(* Minimal HTTP/1.1 telemetry + optimization server over Unix sockets.

   Design constraints (see DESIGN.md §8 and §14):
   - no threads: the listener is non-blocking and [pump] is driven from
     the trainer tick (or the serve daemon's loop), so serving can never
     deadlock the work it observes;
   - no keep-alive: one request, one response, close — the server holds
     no per-client state between pumps;
   - never raise into the caller's loop: parse failures become 4xx
     responses, socket failures are swallowed per client. POST bodies
     are read against a declared Content-Length with a hard size bound
     (413) and a receive timeout, so a torn or lying client costs at
     most one timeout window and a 400. *)

type request = { meth : string; path : string; body : string }

type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;
  body : string;
}

type handler = request -> response

let default_max_body = 1 lsl 20 (* 1 MiB *)
let max_head = 8192

let response ?(status = 200) ?(content_type = "text/plain; charset=utf-8")
    ?(headers = []) (body : string) : response =
  { status; content_type; headers; body }

let json_response ?(status = 200) ?(headers = []) (j : Json.t) : response =
  { status;
    content_type = "application/json";
    headers;
    body = Json.to_string j ^ "\n" }

let status_reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let error_response ?(headers = []) status msg =
  json_response ~status ~headers (Json.Obj [ ("error", Json.Str msg) ])

(* Case-insensitive header lookup over the raw head lines. Returns the
   trimmed value of the first matching header. *)
let find_header (head : string) (name : string) : string option =
  let name = String.lowercase_ascii name in
  String.split_on_char '\n' head
  |> List.find_map (fun line ->
         let line =
           if String.length line > 0 && line.[String.length line - 1] = '\r'
           then String.sub line 0 (String.length line - 1)
           else line
         in
         match String.index_opt line ':' with
         | Some i when String.lowercase_ascii (String.sub line 0 i) = name ->
           Some (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
         | _ -> None)

(* A Content-Length must be all digits — leading sign, spaces inside,
   or any other junk is a lying client, not a parse-to-zero. *)
let parse_content_length (v : string) : int option =
  if v = "" || not (String.for_all (fun c -> c >= '0' && c <= '9') v) then None
  else match int_of_string_opt v with
    | Some n when n >= 0 -> Some n
    | _ -> None

(* Split raw bytes into (head, body-so-far) at the first blank line;
   [None] while the head terminator has not arrived yet. *)
let split_head (raw : string) : (string * string) option =
  let n = String.length raw in
  let rec find i =
    if i + 3 < n then
      if raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
         && raw.[i + 3] = '\n'
      then Some (i, 4)
      else if raw.[i] = '\n' && raw.[i + 1] = '\n' then Some (i, 2)
      else find (i + 1)
    else if i + 1 < n && raw.[i] = '\n' && raw.[i + 1] = '\n' then Some (i, 2)
    else None
  in
  match find 0 with
  | Some (i, sep) ->
    Some (String.sub raw 0 i, String.sub raw (i + sep) (n - i - sep))
  | None -> None

(* Declared body length of a head: [Ok None] — no body expected (GET),
   [Ok (Some n)] — n bytes follow, [Error resp] — invalid declaration. *)
let declared_body_length (meth : string) (head : string) :
    (int option, response) result =
  match find_header head "content-length" with
  | None ->
    if meth = "POST" then Error (error_response 400 "POST requires a valid Content-Length")
    else Ok None
  | Some v ->
    (match parse_content_length v with
     | Some n -> Ok (Some n)
     | None ->
       Error (error_response 400 (Printf.sprintf "invalid Content-Length %S" v)))

(* first line of the head: METHOD SP target SP version *)
let parse_request_line (head : string) : (string * string, response) result =
  let line =
    match String.index_opt head '\n' with
    | Some i ->
      let l = String.sub head 0 i in
      if String.length l > 0 && l.[String.length l - 1] = '\r' then
        String.sub l 0 (String.length l - 1)
      else l
    | None -> head
  in
  match String.split_on_char ' ' line with
  | [ meth; target; version ]
    when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
    if meth <> "GET" && meth <> "POST" then
      Error (error_response 405 (Printf.sprintf "method %s not allowed" meth))
    else
      let path =
        match String.index_opt target '?' with
        | Some i -> String.sub target 0 i
        | None -> target
      in
      Ok (meth, path)
  | _ -> Error (error_response 400 "malformed request line")

(* Parse a complete raw request (head + body). Errors come back as
   ready-to-send responses: 400 for a malformed request line, a missing
   or invalid Content-Length on a POST, or a body shorter than declared
   (torn client); 405 for unknown methods; 413 for a body larger than
   [max_body]. *)
let parse_request ?(max_body = default_max_body) (raw : string) :
    (request, response) result =
  let head, body =
    match split_head raw with Some hb -> hb | None -> (raw, "")
  in
  match parse_request_line head with
  | Error resp -> Error resp
  | Ok (meth, path) ->
    (match declared_body_length meth head with
     | Error resp -> Error resp
     | Ok None -> Ok { meth; path; body = "" }
     | Ok (Some n) ->
       if n > max_body then
         Error
           (error_response 413
              (Printf.sprintf "body of %d bytes exceeds the %d byte limit" n
                 max_body))
       else if String.length body < n then
         Error
           (error_response 400
              (Printf.sprintf "torn body: Content-Length %d but only %d bytes sent"
                 n (String.length body)))
       else Ok { meth; path; body = String.sub body 0 n })

let render_response (r : response) : string =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) r.headers)
  in
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%sConnection: close\r\n\r\n%s"
    r.status (status_reason r.status) r.content_type
    (String.length r.body) extra r.body

(* --- the standard telemetry routes ---------------------------------------- *)

let run_summary (i : Run.info) : Json.t =
  Json.Obj
    [ ("id", Json.Str i.Run.run_id);
      ("dir", Json.Str i.Run.run_dir);
      ("manifest", i.Run.manifest) ]

let telemetry_handler ?(registry = Metrics.global)
    ?(runs_root = Run.default_root)
    ?(alerts : unit -> Json.t list = fun () -> [])
    ?(coverage : unit -> Json.t option = fun () -> None)
    ~(health : unit -> Json.t) () : handler =
 fun (req : request) ->
  match String.split_on_char '/' req.path with
  | [ ""; "metrics" ] -> response (Expo.scrape ~r:registry ())
  | [ ""; "healthz" ] -> json_response (health ())
  | [ ""; "alerts" ] -> json_response (Json.Arr (alerts ()))
  | [ ""; "coverage" ] ->
    (match coverage () with
     | Some doc -> json_response doc
     | None -> error_response 404 "no coverage table for this run")
  | [ ""; "runs" ] ->
    json_response (Json.Arr (List.map run_summary (Run.list_runs ~root:runs_root ())))
  | [ ""; "runs"; id; "progress" ] ->
    (match Run.find ~root:runs_root id with
     | info ->
       let records, dropped = Run.read_progress info in
       json_response
         (Json.Obj
            [ ("id", Json.Str info.Run.run_id);
              ("dropped", Json.Int dropped);
              ("records", Json.Arr records) ])
     | exception Failure msg -> error_response 404 msg)
  | _ -> error_response 404 (Printf.sprintf "no route for %s" req.path)

(* --- the socket loop ------------------------------------------------------- *)

type t = {
  sock : Unix.file_descr;
  t_port : int;
  handler : handler;
  max_body : int;
  mutable closed : bool;
}

type client = { fd : Unix.file_descr; mutable open_ : bool }

let create ?(backlog = 16) ?(max_body = default_max_body) ~(port : int)
    ~(handler : handler) () : t =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen sock backlog;
     Unix.set_nonblock sock
   with e ->
     Unix.close sock;
     raise e);
  let t_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { sock; t_port; handler; max_body; closed = false }

let port (t : t) = t.t_port

(* Read one full request from an accepted client: loop until the head
   terminator arrives, then until the declared body is complete — both
   against the 1 s receive timeout and hard size bounds, so a silent or
   flooding client cannot stall the pump or grow the buffer without
   bound. Returns the raw bytes read (possibly torn — [parse_request]
   turns a short body into a 400). *)
let read_raw_request (t : t) (fd : Unix.file_descr) : string =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 8192 in
  (* stop reading once we know the request must already be rejected:
     head too large, or body declared larger than the bound *)
  let limit = ref (max_head + t.max_body + 4) in
  let body_target = ref None in
  let finished () =
    match split_head (Buffer.contents buf) with
    | None -> Buffer.length buf > max_head
    | Some (head, body) ->
      (match !body_target with
       | Some n -> String.length body >= n
       | None ->
         (match parse_request_line head with
          | Error _ -> true
          | Ok (meth, _) ->
            (match declared_body_length meth head with
             | Error _ -> true
             | Ok None -> true
             | Ok (Some n) ->
               if n > t.max_body then true
               else begin
                 body_target := Some n;
                 String.length body >= n
               end)))
  in
  (try
     let continue_ = ref true in
     while !continue_ do
       if finished () || Buffer.length buf >= !limit then continue_ := false
       else
         match Unix.read fd chunk 0 (Bytes.length chunk) with
         | 0 -> continue_ := false
         | n -> Buffer.add_subbytes buf chunk 0 n
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  Buffer.contents buf

(* Accept one pending connection and read its request fully; [None]
   when no connection is pending. The caller owns the client and must
   [respond] (which closes it) on every path. *)
let accept (t : t) : (client * (request, response) result) option =
  if t.closed then None
  else
    match Unix.accept t.sock with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> None
    | exception Unix.Unix_error _ -> None
    | fd, _ ->
      let client = { fd; open_ = true } in
      let parsed =
        try
          Unix.clear_nonblock fd;
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0;
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0;
          let raw = read_raw_request t fd in
          if raw = "" then Error (error_response 400 "empty request")
          else parse_request ~max_body:t.max_body raw
        with Unix.Unix_error _ | Sys_error _ ->
          Error (error_response 400 "unreadable request")
      in
      Some (client, parsed)

let respond (c : client) (resp : response) : unit =
  if c.open_ then begin
    c.open_ <- false;
    Fun.protect
      ~finally:(fun () -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      (fun () ->
        try
          let bytes = Bytes.of_string (render_response resp) in
          let len = Bytes.length bytes in
          let written = ref 0 in
          while !written < len do
            written := !written + Unix.write c.fd bytes !written (len - !written)
          done
        with Unix.Unix_error _ | Sys_error _ -> ())
  end

let pump (t : t) : unit =
  let continue_ = ref true in
  while !continue_ do
    match accept t with
    | None -> continue_ := false
    | Some (client, Error resp) -> respond client resp
    | Some (client, Ok req) ->
      let resp =
        try t.handler req with e -> error_response 500 (Printexc.to_string e)
      in
      respond client resp
  done

let close (t : t) : unit =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
