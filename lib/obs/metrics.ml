(* Metrics registry. Series are keyed by (name, sorted labels); handles
   are mutable cells so updating a metric on a hot path stays a handful
   of instructions, not a hashtable probe. *)

open Posetrl_support

type histogram = {
  bounds : float array;          (* ascending upper bounds *)
  counts : int array;            (* length = bounds + 1 (overflow) *)
  mutable h_sum : float;
  mutable h_count : int;
  h_lock : Mutex.t;              (* guards counts/h_sum/h_count *)
}

type counter = float Atomic.t
type gauge = float Atomic.t

type cell =
  | Counter of counter
  | Gauge of gauge
  | Hist of histogram

type key = string * (string * string) list

(* The registry hashtable is guarded by a mutex so series registration
   and snapshots stay safe when worker domains look up labeled handles
   lazily (a racing [Hashtbl.add] can corrupt the table structurally).

   Handle updates are domain-safe too (the racy-update caveat PR 4
   documented is gone): counters and gauges are [float Atomic.t] — [inc]
   is a CAS retry loop, [set] a plain atomic store — and histogram rows
   carry their own mutex so bucket count, sum and count move together.
   The histogram lock is per-row and [observe] sites run at tick/task
   frequency, so contention is nil; the counter CAS costs a few ns over
   a plain add (benched in the "prof" bench section). *)
type t = { cells : (key, cell) Hashtbl.t; lock : Mutex.t }

let create () = { cells = Hashtbl.create 64; lock = Mutex.create () }
let global = create ()

let locked (r : t) (f : unit -> 'a) : 'a =
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f

let reset (r : t) = locked r (fun () -> Hashtbl.reset r.cells)

let norm_labels labels = List.sort compare labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let lookup (r : t) (name : string) (labels : (string * string) list)
    (make : unit -> cell) : cell =
  let key = (name, norm_labels labels) in
  locked r (fun () ->
      match Hashtbl.find_opt r.cells key with
      | Some c -> c
      | None ->
        let c = make () in
        Hashtbl.add r.cells key c;
        c)

let counter ?(r = global) ?(labels = []) name : counter =
  match lookup r name labels (fun () -> Counter (Atomic.make 0.0)) with
  | Counter c -> c
  | c ->
    invalid_arg
      (Printf.sprintf "Metrics.counter: %s already registered as a %s" name
         (kind_name c))

(* CAS retry loop: [compare_and_set] on a [float Atomic.t] compares the
   boxed value physically, and [Atomic.get] hands back that same box, so
   the loop is correct — it only retries when another domain swapped the
   cell between the read and the CAS. *)
let inc ?(by = 1.0) (c : counter) =
  let rec go () =
    let old = Atomic.get c in
    if not (Atomic.compare_and_set c old (old +. by)) then go ()
  in
  go ()

let gauge ?(r = global) ?(labels = []) name : gauge =
  match lookup r name labels (fun () -> Gauge (Atomic.make 0.0)) with
  | Gauge g -> g
  | c ->
    invalid_arg
      (Printf.sprintf "Metrics.gauge: %s already registered as a %s" name
         (kind_name c))

let set (g : gauge) v = Atomic.set g v

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]

let histogram ?(r = global) ?(labels = []) ?(buckets = default_buckets) name :
    histogram =
  let make () =
    if Array.length buckets = 0 then
      invalid_arg "Metrics.histogram: empty bucket list";
    Array.iteri
      (fun i b ->
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Metrics.histogram: buckets must be strictly ascending")
      buckets;
    Hist
      { bounds = Array.copy buckets;
        counts = Array.make (Array.length buckets + 1) 0;
        h_sum = 0.0;
        h_count = 0;
        h_lock = Mutex.create () }
  in
  match lookup r name labels make with
  | Hist h -> h
  | c ->
    invalid_arg
      (Printf.sprintf "Metrics.histogram: %s already registered as a %s" name
         (kind_name c))

let observe (h : histogram) (v : float) =
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do incr i done;
  Mutex.lock h.h_lock;
  h.counts.(!i) <- h.counts.(!i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1;
  Mutex.unlock h.h_lock

let value ?(r = global) ?(labels = []) name : float option =
  match locked r (fun () -> Hashtbl.find_opt r.cells (name, norm_labels labels)) with
  | Some (Counter c) -> Some (Atomic.get c)
  | Some (Gauge g) -> Some (Atomic.get g)
  | _ -> None

let sum ?(r = global) ?(labels = []) name : float option =
  match locked r (fun () -> Hashtbl.find_opt r.cells (name, norm_labels labels)) with
  | Some (Hist h) ->
    Mutex.lock h.h_lock;
    let s = h.h_sum in
    Mutex.unlock h.h_lock;
    Some s
  | _ -> None

(* --- snapshots ---------------------------------------------------------- *)

type row = {
  row_name : string;
  row_labels : (string * string) list;
  row_kind : string;
  row_value : float;
  row_count : int;
  row_sum : float;
  row_buckets : (float * int) list;
  row_detail : string;
}

(* Smallest bucket upper bound covering quantile [q] of the samples. *)
let quantile_bound (h : histogram) (q : float) : string =
  if h.h_count = 0 then "-"
  else begin
    let target = int_of_float (ceil (q *. float_of_int h.h_count)) in
    let acc = ref 0 and result = ref None in
    Array.iteri
      (fun i c ->
        acc := !acc + c;
        if Option.is_none !result && !acc >= target then
          result :=
            Some
              (if i < Array.length h.bounds then
                 Printf.sprintf "%g" h.bounds.(i)
               else "+inf"))
      h.counts;
    match !result with Some s -> s | None -> "+inf"
  end

let row_of_cell ((name, labels) : key) (c : cell) : row =
  match c with
  | Counter v ->
    let v = Atomic.get v in
    { row_name = name; row_labels = labels; row_kind = "counter";
      row_value = v; row_count = 1; row_sum = v; row_buckets = [];
      row_detail = "" }
  | Gauge v ->
    let v = Atomic.get v in
    { row_name = name; row_labels = labels; row_kind = "gauge";
      row_value = v; row_count = 1; row_sum = v; row_buckets = [];
      row_detail = "" }
  | Hist h ->
    (* snapshot the row under its lock so buckets, sum and count agree *)
    Mutex.lock h.h_lock;
    let counts = Array.copy h.counts and h_sum = h.h_sum and h_count = h.h_count in
    Mutex.unlock h.h_lock;
    let frozen =
      { h with counts; h_sum; h_count; h_lock = Mutex.create () }
    in
    let mean = if h_count = 0 then 0.0 else h_sum /. float_of_int h_count in
    let buckets =
      List.init
        (Array.length counts)
        (fun i ->
          ( (if i < Array.length h.bounds then h.bounds.(i) else infinity),
            counts.(i) ))
    in
    { row_name = name;
      row_labels = labels;
      row_kind = "histogram";
      row_value = mean;
      row_count = h_count;
      row_sum = h_sum;
      row_buckets = buckets;
      row_detail =
        Printf.sprintf "p50<=%s p95<=%s sum=%g" (quantile_bound frozen 0.5)
          (quantile_bound frozen 0.95) h_sum }

let snapshot ?(r = global) () : row list =
  locked r (fun () -> Hashtbl.fold (fun k c acc -> row_of_cell k c :: acc) r.cells [])
  |> List.sort (fun a b ->
         compare (a.row_name, a.row_labels) (b.row_name, b.row_labels))

let labels_to_string labels =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let render ?(title = "metrics") (rows : row list) : string =
  let t =
    Table.create ~title
      ~headers:[ "metric"; "labels"; "kind"; "value"; "n"; "detail" ]
      ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Right; Table.Right; Table.Left ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.row_name;
          labels_to_string r.row_labels;
          r.row_kind;
          Printf.sprintf "%g" r.row_value;
          (if r.row_kind = "histogram" then string_of_int r.row_count else "-");
          r.row_detail ])
    rows;
  Table.render t
