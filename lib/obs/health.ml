(* Training-health watchdog: a rule engine the trainer evaluates once
   per tick over a snapshot of the learner's vital signs.

   Rules are edge-triggered — an alert fires when its condition becomes
   true and re-arms when the condition clears — so a persistently sick
   run produces one alert per incident, not one per tick. Every fired
   alert is kept in the engine (capped), counted on the labeled
   posetrl.alerts.total{rule=...} counter, and handed back to the caller
   for persistence (the CLI appends them to the run dir's crash-tolerant
   alerts.jsonl).

   The stalled-episode rule is the only one that reads the clock
   ({!Clock.now}), so the whole engine is testable under a fake clock. *)

type config = {
  collapse_pct : float;
  (* reward-collapse: windowed mean dropped more than this % below the
     trailing best windowed mean *)
  collapse_min_best : float;
  (* |trailing best| must reach this before collapse can fire (a drop
     from 0.01 to -0.01 is noise, not a collapse) *)
  q_explosion_abs : float;    (* |q_max| beyond this is an explosion *)
  stall_s : float;            (* seconds without a finished episode *)
  replay_age_factor : float;
  (* replay is stale when the mean TD-age exceeds factor × capacity *)
  drift_kl : float;
  (* KL(current window action histogram ‖ previous window) beyond this
     is an abrupt policy shift; gradual ε-annealing stays below it *)
  max_alerts : int;           (* retained-alert cap (oldest dropped) *)
}

let default_config =
  { collapse_pct = 50.0;
    collapse_min_best = 1.0;
    q_explosion_abs = 1e6;
    stall_s = 300.0;
    replay_age_factor = 4.0;
    drift_kl = 1.0;
    max_alerts = 256 }

let rules =
  [ "nan_loss"; "reward_collapse"; "q_explosion"; "stalled_episode";
    "replay_stale"; "action_drift" ]

type sample = {
  s_step : int;
  s_episode : int;
  s_loss : float;
  s_mean_reward : float;       (* windowed mean episode reward *)
  s_q_max : float;
  s_replay_size : int;
  s_replay_capacity : int;
  s_replay_age_mean : float;   (* mean TD-age of buffered transitions, steps *)
  s_weights_finite : bool;     (* NaN/Inf scan of the online network *)
  s_actions : int array;       (* action histogram over the last window *)
}

type alert = {
  a_rule : string;
  a_step : int;
  a_severity : string;         (* "error" or "warn" *)
  a_message : string;
  a_value : float;             (* the triggering reading; may be non-finite *)
}

type t = {
  cfg : config;
  registry : Metrics.t;
  mutable best_reward : float;
  mutable last_episode : int;
  mutable last_episode_t : float;   (* Clock.now of the last episode change *)
  mutable prev_actions : int array option;
  active : (string, unit) Hashtbl.t;   (* rules whose condition holds *)
  mutable fired : alert list;          (* newest first, capped *)
  mutable fired_n : int;
}

let create ?(config = default_config) ?(registry = Metrics.global) () : t =
  { cfg = config;
    registry;
    best_reward = neg_infinity;
    last_episode = min_int;
    last_episode_t = Clock.now ();
    prev_actions = None;
    active = Hashtbl.create 7;
    fired = [];
    fired_n = 0 }

let alerts (t : t) : alert list = List.rev t.fired

(* KL divergence between two action histograms (counts), with +1
   Laplace smoothing so empty bins stay finite. Symmetric in length:
   shorter histogram is treated as zero-padded. *)
let kl (p : int array) (q : int array) : float =
  let n = max (Array.length p) (Array.length q) in
  if n = 0 then 0.0
  else begin
    let get a i = if i < Array.length a then float_of_int a.(i) else 0.0 in
    let tot a = Array.fold_left (fun s v -> s +. float_of_int v) 0.0 a in
    let pt = tot p +. float_of_int n and qt = tot q +. float_of_int n in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let pi = (get p i +. 1.0) /. pt in
      let qi = (get q i +. 1.0) /. qt in
      acc := !acc +. (pi *. log (pi /. qi))
    done;
    !acc
  end

(* --- alert records --------------------------------------------------------- *)

(* Json.Float serializes non-finite values as null, so the NaN/Inf the
   nan_loss rule exists to report is encoded as a string instead. *)
let json_of_value (v : float) : Json.t =
  if Float.is_finite v then Json.Float v
  else if Float.is_nan v then Json.Str "nan"
  else Json.Str (if v > 0.0 then "inf" else "-inf")

let value_of_json : Json.t option -> float = function
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | Some (Json.Str "nan") -> Float.nan
  | Some (Json.Str "inf") -> Float.infinity
  | Some (Json.Str "-inf") -> Float.neg_infinity
  | _ -> Float.nan

let alert_to_json (a : alert) : Json.t =
  Json.Obj
    [ ("kind", Json.Str "alert");
      ("rule", Json.Str a.a_rule);
      ("step", Json.Int a.a_step);
      ("severity", Json.Str a.a_severity);
      ("message", Json.Str a.a_message);
      ("value", json_of_value a.a_value) ]

let alert_of_json (j : Json.t) : alert option =
  match Runlog.str "rule" j, Runlog.num "step" j with
  | Some rule, Some step ->
    Some
      { a_rule = rule;
        a_step = int_of_float step;
        a_severity = Option.value ~default:"warn" (Runlog.str "severity" j);
        a_message = Option.value ~default:"" (Runlog.str "message" j);
        a_value = value_of_json (Runlog.field "value" j) }
  | _ -> None

(* --- the rule pass --------------------------------------------------------- *)

let fire (t : t) (s : sample) ~rule ~severity ~value fmt =
  Printf.ksprintf
    (fun message ->
      let a =
        { a_rule = rule; a_step = s.s_step; a_severity = severity;
          a_message = message; a_value = value }
      in
      Metrics.inc
        (Metrics.counter ~r:t.registry
           ~labels:[ ("rule", rule) ]
           "posetrl.alerts.total");
      t.fired <- a :: t.fired;
      t.fired_n <- t.fired_n + 1;
      if t.fired_n > t.cfg.max_alerts then begin
        (* drop the oldest retained alert; the counter stays monotone *)
        t.fired <- List.filteri (fun i _ -> i < t.cfg.max_alerts) t.fired;
        t.fired_n <- t.cfg.max_alerts
      end;
      a)
    fmt

(* Edge-trigger plumbing: evaluate [condition]; on a false→true
   transition build the alert with [mk] and collect it. *)
let edge (t : t) (out : alert list ref) ~(rule : string) (condition : bool)
    (mk : unit -> alert) : unit =
  if condition then begin
    if not (Hashtbl.mem t.active rule) then begin
      Hashtbl.replace t.active rule ();
      out := mk () :: !out
    end
  end
  else Hashtbl.remove t.active rule

let check (t : t) (s : sample) : alert list =
  let cfg = t.cfg in
  let out = ref [] in
  (* 1. NaN/Inf in the TD loss or the online network's parameters *)
  let loss_bad = not (Float.is_finite s.s_loss) in
  let weights_bad = not s.s_weights_finite in
  edge t out ~rule:"nan_loss"
    (loss_bad || weights_bad)
    (fun () ->
      fire t s ~rule:"nan_loss" ~severity:"error" ~value:s.s_loss
        "non-finite %s (loss %s, weights %s)"
        (if loss_bad then "td_loss" else "network weights")
        (if loss_bad then "non-finite" else "finite")
        (if weights_bad then "non-finite" else "finite"));
  (* 2. reward collapse vs the trailing best windowed mean *)
  let best = t.best_reward in
  let collapsed =
    Float.is_finite best
    && Float.abs best >= cfg.collapse_min_best
    && s.s_mean_reward < best -. (cfg.collapse_pct /. 100.0 *. Float.abs best)
  in
  edge t out ~rule:"reward_collapse" collapsed (fun () ->
      fire t s ~rule:"reward_collapse" ~severity:"warn" ~value:s.s_mean_reward
        "windowed mean reward %.3f fell >%.0f%% below trailing best %.3f"
        s.s_mean_reward cfg.collapse_pct best);
  if Float.is_finite s.s_mean_reward && s.s_mean_reward > t.best_reward then
    t.best_reward <- s.s_mean_reward;
  (* 3. Q-value explosion *)
  edge t out ~rule:"q_explosion"
    (Float.is_finite s.s_q_max && Float.abs s.s_q_max > cfg.q_explosion_abs)
    (fun () ->
      fire t s ~rule:"q_explosion" ~severity:"error" ~value:s.s_q_max
        "q_max %.3e beyond ±%.1e" s.s_q_max cfg.q_explosion_abs);
  (* 4. stalled episodes: steps keep flowing but no episode finishes *)
  if s.s_episode <> t.last_episode then begin
    t.last_episode <- s.s_episode;
    t.last_episode_t <- Clock.now ()
  end;
  let stalled_for = Clock.now () -. t.last_episode_t in
  edge t out ~rule:"stalled_episode"
    (stalled_for > cfg.stall_s)
    (fun () ->
      fire t s ~rule:"stalled_episode" ~severity:"warn" ~value:stalled_for
        "no episode finished for %.0fs (episode stuck at %d)" stalled_for
        s.s_episode);
  (* 5. replay-buffer health: transitions much older than one full ring *)
  edge t out ~rule:"replay_stale"
    (s.s_replay_size > 0
     && s.s_replay_age_mean
        > cfg.replay_age_factor *. float_of_int s.s_replay_capacity)
    (fun () ->
      fire t s ~rule:"replay_stale" ~severity:"warn" ~value:s.s_replay_age_mean
        "mean TD-age %.0f steps exceeds %.0f× replay capacity %d"
        s.s_replay_age_mean cfg.replay_age_factor s.s_replay_capacity);
  (* 6. abrupt action-distribution drift between consecutive windows *)
  (match t.prev_actions with
   | Some prev when Array.fold_left ( + ) 0 s.s_actions > 0 ->
     let d = kl s.s_actions prev in
     edge t out ~rule:"action_drift"
       (d > cfg.drift_kl)
       (fun () ->
         fire t s ~rule:"action_drift" ~severity:"warn" ~value:d
           "action histogram KL %.3f vs previous window (limit %.3f)" d
           cfg.drift_kl)
   | _ -> ());
  if Array.fold_left ( + ) 0 s.s_actions > 0 then
    t.prev_actions <- Some (Array.copy s.s_actions);
  List.rev !out
