(* The run ledger: a persistent record of every training / eval / bench
   run, so finished runs can be listed, replotted and diffed — the
   bookkeeping behind "did this change make the agent worse?".

   One run owns one directory (default runs/<timestamp>-<name>/):

     manifest.json    id, name, kind, status, created, seed, hyperparams,
                      wall_s, final result — rewritten atomically at
                      create/meta-merge/finish
     progress.jsonl   per-tick / per-episode records (Runlog schema),
                      flushed every few records so a killed run keeps a
                      readable prefix
     eval.json        per-suite size/throughput tables (Evaluate)
     trace.jsonl      span trace, when the caller installs one

   The reading side (list/find/compare) works on any directory that has
   a manifest.json, so CI gates can diff run dirs produced anywhere. *)

let default_root = "runs"

let manifest_file = "manifest.json"
let progress_file = "progress.jsonl"
let eval_file = "eval.json"
let trace_file = "trace.jsonl"
let attrib_file = "attrib.json"
let alerts_file = "alerts.jsonl"
let coverage_file = "coverage.json"
let serve_file = "serve.json"

let manifest_path dir = Filename.concat dir manifest_file
let progress_path dir = Filename.concat dir progress_file
let eval_path dir = Filename.concat dir eval_file
let trace_path dir = Filename.concat dir trace_file
let attrib_path dir = Filename.concat dir attrib_file
let alerts_path dir = Filename.concat dir alerts_file
let coverage_path dir = Filename.concat dir coverage_file
let serve_path dir = Filename.concat dir serve_file

let rec mkdir_p (dir : string) : unit =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let iso8601 (t : float) : string =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let timestamp_id (t : float) (name : string) : string =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d%02d%02d-%02d%02d%02d-%s" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec name

(* --- writing side --------------------------------------------------------- *)

type t = {
  r_dir : string;
  r_created : float;
  mutable r_meta : (string * Json.t) list;
  r_progress : out_channel;
  r_alerts : out_channel;
  mutable r_pending : int;
  mutable r_finished : bool;
}

let dir (t : t) = t.r_dir

(* merge [extra] into [base], later keys overriding earlier ones *)
let merge_fields (base : (string * Json.t) list) (extra : (string * Json.t) list) =
  List.filter (fun (k, _) -> not (List.mem_assoc k extra)) base @ extra

let write_manifest (t : t) ~(status : string) : unit =
  let doc =
    Json.Obj
      (merge_fields
         [ ("id", Json.Str (Filename.basename t.r_dir));
           ("status", Json.Str status);
           ("created", Json.Str (iso8601 t.r_created));
           ("created_unix", Json.Float t.r_created) ]
         t.r_meta)
  in
  Runlog.write_json_file (manifest_path t.r_dir) doc

let create ?(root = default_root) ?dir ~(name : string)
    ~(meta : (string * Json.t) list) () : t =
  let created = Clock.now () in
  let dir =
    match dir with
    | Some d -> d
    | None -> Filename.concat root (timestamp_id created name)
  in
  mkdir_p dir;
  let t =
    { r_dir = dir;
      r_created = created;
      r_meta = merge_fields [ ("name", Json.Str name) ] meta;
      r_progress = open_out (progress_path dir);
      (* alerts.jsonl exists (empty) from creation: "no alerts" and
         "run predates the watchdog" stay distinguishable on disk *)
      r_alerts = open_out (alerts_path dir);
      r_pending = 0;
      r_finished = false }
  in
  write_manifest t ~status:"running";
  t

let set_meta (t : t) (extra : (string * Json.t) list) : unit =
  t.r_meta <- merge_fields t.r_meta extra;
  write_manifest t ~status:(if t.r_finished then "complete" else "running")

let progress_flush_every = 8

let progress (t : t) (record : Json.t) : unit =
  Runlog.append_jsonl_line t.r_progress record;
  t.r_pending <- t.r_pending + 1;
  if t.r_pending >= progress_flush_every then begin
    flush t.r_progress;
    t.r_pending <- 0
  end

let write_eval (t : t) (doc : Json.t) : unit =
  Runlog.write_json_file (eval_path t.r_dir) doc

let write_attrib (t : t) (doc : Json.t) : unit =
  Runlog.write_json_file (attrib_path t.r_dir) doc

let write_coverage (t : t) (doc : Json.t) : unit =
  Runlog.write_json_file (coverage_path t.r_dir) doc

let write_serve (t : t) (doc : Json.t) : unit =
  Runlog.write_json_file (serve_path t.r_dir) doc

(* Alerts are rare and each one matters, so unlike progress records they
   flush immediately — a crash right after an alert keeps it on disk. *)
let alert (t : t) (record : Json.t) : unit =
  Runlog.append_jsonl_line t.r_alerts record;
  flush t.r_alerts

let finish ?(result = []) (t : t) : unit =
  if not t.r_finished then begin
    t.r_finished <- true;
    close_out t.r_progress;
    close_out t.r_alerts;
    t.r_meta <-
      merge_fields t.r_meta
        [ ("wall_s", Json.Float (Clock.now () -. t.r_created));
          ("result", Json.Obj result) ];
    write_manifest t ~status:"complete"
  end

(* --- reading side --------------------------------------------------------- *)

type info = {
  run_dir : string;
  run_id : string;
  manifest : Json.t;
}

let load (dir : string) : info =
  let path = manifest_path dir in
  if not (Sys.file_exists path) then
    failwith (Printf.sprintf "%s: not a run directory (no %s)" dir manifest_file);
  (* the directory name, not the manifest "id", names the run: copied or
     renamed run dirs should list under their current name *)
  { run_dir = dir;
    run_id = Filename.basename dir;
    manifest = Runlog.read_json_file path }

let list_runs ?(root = default_root) () : info list =
  (* missing/unreadable roots and corrupt manifests yield an empty (or
     shorter) listing, never an exception: `posetrl runs list` and
     `posetrl watch` must stay usable while a ledger is half-written *)
  match
    if Sys.file_exists root && Sys.is_directory root then Sys.readdir root
    else [||]
  with
  | exception Sys_error _ -> []
  | entries ->
    (* creation order: manifest mtime first, run id as the tiebreak —
       same-second manifests (parallel CI jobs, fast smoke runs) would
       otherwise list in filesystem order, which is not stable across
       machines or reruns *)
    Array.to_list entries
    |> List.filter_map (fun entry ->
           let dir = Filename.concat root entry in
           if Sys.file_exists (manifest_path dir) then
             match load dir with
             | info ->
               let mtime =
                 try (Unix.stat (manifest_path dir)).Unix.st_mtime
                 with Unix.Unix_error _ -> 0.0
               in
               Some (mtime, info)
             | exception (Sys_error _ | Failure _ | Json.Parse_error _) -> None
           else None)
    |> List.sort (fun (ma, a) (mb, b) ->
           match compare ma mb with
           | 0 -> compare a.run_id b.run_id
           | c -> c)
    |> List.map snd

let find ?(root = default_root) (id_or_dir : string) : info =
  if Sys.file_exists (manifest_path id_or_dir) then load id_or_dir
  else
    let dir = Filename.concat root id_or_dir in
    if Sys.file_exists (manifest_path dir) then load dir
    else
      failwith
        (Printf.sprintf "no run %s (looked for %s and %s)" id_or_dir
           (manifest_path id_or_dir) (manifest_path dir))

let read_progress (i : info) : Json.t list * int =
  let path = progress_path i.run_dir in
  if Sys.file_exists path then Runlog.read_jsonl path else ([], 0)

let read_eval (i : info) : Json.t option =
  let path = eval_path i.run_dir in
  if Sys.file_exists path then Some (Runlog.read_json_file path) else None

(* The health/attribution readers follow the [list_runs] hardening
   contract: runs that predate the watchdog (no file) and runs whose
   file is torn or corrupt both render as "no data", never an
   exception — `posetrl explain` and `watch` must work on any ledger. *)

let read_attrib (i : info) : Json.t option =
  let path = attrib_path i.run_dir in
  if not (Sys.file_exists path) then None
  else
    match Runlog.read_json_file path with
    | doc -> Some doc
    | exception (Sys_error _ | Json.Parse_error _) -> None

let read_coverage (i : info) : Json.t option =
  let path = coverage_path i.run_dir in
  if not (Sys.file_exists path) then None
  else
    match Runlog.read_json_file path with
    | doc -> Some doc
    | exception (Sys_error _ | Json.Parse_error _) -> None

let read_serve (i : info) : Json.t option =
  let path = serve_path i.run_dir in
  if not (Sys.file_exists path) then None
  else
    match Runlog.read_json_file path with
    | doc -> Some doc
    | exception (Sys_error _ | Json.Parse_error _) -> None

let read_alerts (i : info) : (Json.t list * int) option =
  let path = alerts_path i.run_dir in
  if not (Sys.file_exists path) then None
  else
    match Runlog.read_jsonl path with
    | records -> Some records
    | exception Sys_error _ -> None

(* --- cross-run comparison / regression detection --------------------------- *)

type thresholds = {
  max_reward_drop_pct : float;
  (* % drop of final mean reward vs base that counts as a regression *)
  max_size_drop_pts : float;
  (* drop of per-suite avg size reduction, in percentage points *)
  max_wall_factor : float;
  (* candidate wall time > factor × base wall time; <= 0 disables
     (wall time is noisy — off by default so CI gates stay deterministic) *)
}

let default_thresholds =
  { max_reward_drop_pct = 10.0; max_size_drop_pts = 2.0; max_wall_factor = 0.0 }

type delta = {
  d_metric : string;
  d_base : float option;
  d_cand : float option;
  d_regressed : bool;
  d_note : string;
}

let mk_delta metric base cand regressed note =
  { d_metric = metric; d_base = base; d_cand = cand;
    d_regressed = regressed; d_note = note }

(* suite list out of an eval.json document: (name, avg_red) *)
let eval_suite_reds (doc : Json.t) : (string * float) list =
  match Runlog.field "suites" doc with
  | Some (Json.Arr suites) ->
    List.filter_map
      (fun s ->
        match Runlog.str "suite" s, Runlog.num "avg_red" s with
        | Some name, Some red -> Some (name, red)
        | _ -> None)
      suites
  | _ -> []

let compare_runs ?(thresholds = default_thresholds) ~(base : info)
    ~(cand : info) () : delta list =
  let deltas = ref [] in
  let push d = deltas := d :: !deltas in
  (* final mean reward (train runs) *)
  let reward i = Runlog.path_num [ "result"; "final_mean_reward" ] i.manifest in
  (match reward base, reward cand with
   | Some b, Some c ->
     let drop = 100.0 *. (b -. c) /. Float.max (Float.abs b) 1e-9 in
     let regressed = c < b && drop > thresholds.max_reward_drop_pct in
     push
       (mk_delta "final_mean_reward" (Some b) (Some c) regressed
          (Printf.sprintf "drop %.2f%% (max %.2f%%)" (Float.max 0.0 drop)
             thresholds.max_reward_drop_pct))
   | b, c ->
     if b <> None || c <> None then
       push (mk_delta "final_mean_reward" b c false "missing on one side"));
  (* per-suite avg size reduction (eval.json) *)
  (match read_eval base, read_eval cand with
   | Some eb, Some ec ->
     let cand_reds = eval_suite_reds ec in
     List.iter
       (fun (suite, b) ->
         match List.assoc_opt suite cand_reds with
         | Some c ->
           let drop = b -. c in
           let regressed = drop > thresholds.max_size_drop_pts in
           push
             (mk_delta ("size_red." ^ suite) (Some b) (Some c) regressed
                (Printf.sprintf "drop %.2fpts (max %.2fpts)"
                   (Float.max 0.0 drop) thresholds.max_size_drop_pts))
         | None ->
           push
             (mk_delta ("size_red." ^ suite) (Some b) None false
                "suite missing in candidate"))
       (eval_suite_reds eb)
   | Some _, None -> push (mk_delta "size_red" None None false "candidate has no eval.json")
   | None, _ -> ());
  (* wall time *)
  let wall i = Runlog.num "wall_s" i.manifest in
  (match wall base, wall cand with
   | Some b, Some c ->
     let regressed =
       thresholds.max_wall_factor > 0.0 && c > thresholds.max_wall_factor *. b
     in
     push
       (mk_delta "wall_s" (Some b) (Some c) regressed
          (if thresholds.max_wall_factor > 0.0 then
             Printf.sprintf "max %.1fx base" thresholds.max_wall_factor
           else "informational"))
   | _ -> ());
  List.rev !deltas

let has_regression (deltas : delta list) : bool =
  List.exists (fun d -> d.d_regressed) deltas
