(** Run-ledger persistence format: JSON document files, JSONL streams,
    and the progress-record schema (see DESIGN.md §7 "Run ledger").

    [Run] builds the run-directory lifecycle on top of this; the bench
    harness and tests use it directly. *)

val write_json_file : string -> Json.t -> unit
(** Write one JSON document (tmp file + rename, so a crash mid-write
    never leaves a torn file), newline-terminated. *)

val read_json_file : string -> Json.t
(** @raise Json.Parse_error on malformed content, [Sys_error] if absent. *)

val read_jsonl : string -> Json.t list * int
(** Parse a JSONL stream. Unparseable lines (e.g. a final line torn by a
    killed process) are skipped; the second component counts them. *)

val append_jsonl_line : out_channel -> Json.t -> unit

val str : string -> Json.t -> string option
val num : string -> Json.t -> float option
(** Top-level field accessors; [num] accepts ints and floats. *)

val field : string -> Json.t -> Json.t option

val path : string list -> Json.t -> Json.t option
(** Nested object lookup, e.g.
    [path ["result"; "final_mean_reward"] manifest]. *)

val path_num : string list -> Json.t -> float option

val tick_record :
  ?q_mean:float -> ?q_max:float ->
  ?gc_minor:int -> ?gc_major:int -> ?gc_heap_mb:float ->
  ?gc_alloc_mb_s:float ->
  step:int -> episode:int -> epsilon:float -> mean_reward:float ->
  mean_size_gain:float -> r_binsize:float -> r_throughput:float ->
  loss:float -> unit -> Json.t
(** A ["kind":"tick"] progress record: the trainer's periodic windowed
    means (one per [on_progress] tick). [q_mean]/[q_max] carry the
    agent's latest Q-value diagnostics when available; the [gc_*]
    fields carry the tick's {!Prof.sample_gc} reading (cumulative
    minor/major collection counts, major heap MB, allocation MB/s).
    All optional fields are omitted from the record when absent. *)

val episode_record :
  ?actions:int list ->
  ?step_rewards:(float * float * float) list ->
  episode:int -> step:int -> reward:float -> r_binsize:float ->
  r_throughput:float -> size_gain_pct:float -> thru_gain_pct:float ->
  epsilon:float -> loss:float -> unit -> Json.t
(** A ["kind":"episode"] progress record: one finished episode with its
    reward decomposition ([r_binsize]/[r_throughput] are the unweighted
    Eqn-2/3 component sums; the manifest's α/β recover the weighted
    split). [actions] is the sub-sequence ids taken this episode, in
    order — the input to the [posetrl watch] action histogram.
    [step_rewards] is the per-step (reward, r_binsize, r_throughput)
    triples aligned with [actions], serialized as a ["steps"] array of
    [{r, rb, rt}] objects (omitted when absent — pre-health ledgers
    have no such field); floats print as %.17g, so attribution
    recomputed from the ledger is float-exact. *)

val series :
  kind:string -> x:string -> y:string -> Json.t list -> (float * float) list
(** [(x, y)] pairs from records of one kind, skipping records missing
    either field — the input to the [runs show] sparkline curves. *)
