(** Prometheus text-format exposition (version 0.0.4) rendered from a
    {!Metrics.snapshot}.

    Metric names follow the repo's [posetrl.<area>.<name>] convention;
    the exposition maps them to [posetrl_<area>_<name>], groups the
    labeled series of one metric under a single [# HELP]/[# TYPE]
    header, and renders histograms as real cumulative [_bucket{le=...}]
    series plus exact [_sum]/[_count] (from [row_sum]/[row_count], not
    the lossy quantile string). Served at [GET /metrics] by {!Httpd}. *)

val sanitize_name : string -> string
(** Map a dotted metric name to a legal Prometheus metric name:
    characters outside [[a-zA-Z0-9_:]] become ['_'], and a leading
    digit gains a ['_'] prefix. *)

val escape_label_value : string -> string
(** Escape a label value per the exposition format: backslash, double
    quote and newline. *)

val format_value : float -> string
(** Sample-value formatting: integral floats render without a decimal
    point, non-finite values as [+Inf]/[-Inf]/[NaN]. *)

val render : Metrics.row list -> string
(** Render a snapshot. Rows must be in snapshot order (sorted by name
    then labels) so same-name series group under one header. *)

val scrape : ?r:Metrics.t -> unit -> string
(** [render (Metrics.snapshot ~r ())] — the body of [GET /metrics]. *)
