(** Chrome trace-event export: convert a span trace ([trace.jsonl], as
    read by {!Report.read_jsonl}) into the Trace Event Format JSON array
    loadable by Perfetto ([ui.perfetto.dev]) and [chrome://tracing],
    giving per-pass self-time a flamegraph view. Surfaced as
    [posetrl report FILE.jsonl --chrome out.json]. *)

val of_events : Event.t list -> Json.t
(** A JSON array of complete (["ph":"X"]) events, sorted by start time.
    Timestamps and durations are microseconds ([ts]/[dur]); all events
    share one pid/tid so the viewer reconstructs nesting from interval
    containment; span attrs plus the computed self-time and depth land
    in [args]. *)

val to_string : Event.t list -> string

val write : path:string -> Event.t list -> unit
(** Write the array to [path] (atomic tmp-file + rename). *)
