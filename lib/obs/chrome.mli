(** Chrome trace-event export: convert a span trace ([trace.jsonl], as
    read by {!Report.read_jsonl}) into the Trace Event Format JSON array
    loadable by Perfetto ([ui.perfetto.dev]) and [chrome://tracing],
    giving per-pass self-time a flamegraph view. Surfaced as
    [posetrl report FILE.jsonl --chrome out.json]. *)

val of_events : Event.t list -> Json.t
(** A JSON array of complete (["ph":"X"]) events, sorted by start time,
    preceded by one ["thread_name"] metadata (["ph":"M"]) event per
    distinct domain id. Timestamps and durations are microseconds
    ([ts]/[dur]); each event lands on its emitting domain's track
    ([tid], labeled "main" / "domain-N") so per-domain nesting is
    reconstructed by interval containment within that track; span attrs
    plus the computed self-time and depth land in [args]. *)

val to_string : Event.t list -> string

val write : path:string -> Event.t list -> unit
(** Write the array to [path] (atomic tmp-file + rename). *)
