(** The [posetrl watch] live dashboard: a pure renderer from a run's
    manifest + progress records (as read by the torn-line-tolerant
    {!Runlog} reader) to one terminal frame. The CLI redraws it on a
    polling interval until the manifest leaves ["running"]. *)

val action_histogram : Json.t list -> (int * int) list
(** Per-action selection counts folded from the ["actions"] arrays of
    the ["episode"] progress records, sorted by count descending. *)

val render :
  ?width:int ->
  id:string ->
  manifest:Json.t ->
  records:Json.t list ->
  dropped:int ->
  unit ->
  string
(** One frame: run header (status, step/episode/ε/loss from the latest
    tick), reward / reward-component / ε / loss sparklines, and the
    action-selection histogram. [width] bounds the sparkline columns
    (default 60). Renders a clear placeholder when [records] is empty. *)
