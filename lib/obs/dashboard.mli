(** The [posetrl watch] live dashboard: a pure renderer from a run's
    manifest + progress records (as read by the torn-line-tolerant
    {!Runlog} reader) to one terminal frame. The CLI redraws it on a
    polling interval until the manifest leaves ["running"]. *)

val action_histogram : Json.t list -> (int * int) list
(** Per-action selection counts folded from the ["actions"] arrays of
    the ["episode"] progress records, sorted by count descending. *)

val render :
  ?width:int ->
  ?alerts:Json.t list option ->
  ?coverage:Json.t option ->
  ?serve:Json.t option ->
  id:string ->
  manifest:Json.t ->
  records:Json.t list ->
  dropped:int ->
  unit ->
  string
(** One frame: run header (status, step/episode/ε/loss from the latest
    tick), a watchdog-alerts row, a decision-space coverage row, reward
    / reward-component / ε / loss sparklines, and the action-selection
    histogram. [width] bounds the sparkline columns (default 60).
    Renders a clear placeholder when [records] is empty.

    [alerts] is the result of {!Run.read_alerts} (records only):
    [None] — the run predates the watchdog, rendered as a
    "(not recorded)" placeholder, never a blank or garbled row;
    [Some []] — healthy; [Some l] — red rows for the latest alerts.

    [coverage] is the result of {!Run.read_coverage}: [None] — absent
    or corrupt, rendered as "(not recorded)"; [Some doc] — the edge /
    entropy / node summary of the coverage document.

    [serve] is the result of {!Run.read_serve}: [None] — not a serve
    run, the row is simply omitted; [Some doc] — a request / cache-hit /
    queue-depth / latency-percentile summary of the daemon's stats. *)
