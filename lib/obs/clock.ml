(* Pluggable time source. Production uses the wall clock; tests install
   a hand-advanced fake so span durations are exact.

   Every install also mirrors the source into [Posetrl_support.Pool]'s
   clock ref: pool timing stamps are taken on worker domains (support
   can't depend on obs), but they must tick on the same clock as the
   spans and pool-utilization math built on top of them. *)

let real () = Unix.gettimeofday ()
let source = ref real
let now () = !source ()

let set f =
  source := f;
  Posetrl_support.Pool.clock := f

let reset () =
  source := real;
  Posetrl_support.Pool.clock := Unix.gettimeofday

let with_fake ?(start = 0.0) f =
  let t = ref start in
  let saved = !source in
  set (fun () -> !t);
  Fun.protect
    ~finally:(fun () ->
      source := saved;
      Posetrl_support.Pool.clock := saved)
    (fun () -> f (fun d -> t := !t +. d))
