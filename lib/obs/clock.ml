(* Pluggable time source. Production uses the wall clock; tests install
   a hand-advanced fake so span durations are exact. *)

let real () = Unix.gettimeofday ()
let source = ref real
let now () = !source ()
let set f = source := f
let reset () = source := real

let with_fake ?(start = 0.0) f =
  let t = ref start in
  let saved = !source in
  source := (fun () -> !t);
  Fun.protect
    ~finally:(fun () -> source := saved)
    (fun () -> f (fun d -> t := !t +. d))
