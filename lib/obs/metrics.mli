(** Metrics registry: counters, gauges and fixed-bucket histograms with
    labeled series.

    Metric names follow the [posetrl.<area>.<name>] convention (see
    DESIGN.md "Observability"). A metric handle is looked up (or
    created) once and then updated through a plain mutable cell, so
    hot-path increments cost a float add — instrument freely.

    The [global] registry backs the whole pipeline; tests create their
    own with [create] to stay isolated.

    Domain safety: registration, lookup and snapshots are serialized by
    a per-registry lock, so worker domains may create labeled handles
    concurrently. Handle updates are domain-safe without losing
    increments: counters and gauges are atomics ([inc] is a CAS retry
    loop, [set] an atomic store) and each histogram row carries its own
    mutex, so bucket counts, sum and count always agree. Anything
    determinism-critical must still not read metrics — timing series
    vary run to run by nature. *)

type t
(** A registry: a set of (name, labels) series. *)

type counter
type gauge
type histogram

val create : unit -> t
val global : t

val reset : t -> unit
(** Drop every registered series (handles from before the reset keep
    working but are no longer reachable from snapshots). *)

val counter : ?r:t -> ?labels:(string * string) list -> string -> counter
(** Look up or register a monotone counter.
    @raise Invalid_argument if the series exists with another kind. *)

val inc : ?by:float -> counter -> unit

val gauge : ?r:t -> ?labels:(string * string) list -> string -> gauge
val set : gauge -> float -> unit

val default_buckets : float array
(** Log-spaced seconds buckets (1µs … 10s) for timing histograms. *)

val histogram :
  ?r:t -> ?labels:(string * string) list -> ?buckets:float array -> string ->
  histogram
(** Fixed upper-bound buckets (ascending); values above the last bound
    land in an implicit overflow bucket. [buckets] is only consulted
    when the series is first created. *)

val observe : histogram -> float -> unit

val value : ?r:t -> ?labels:(string * string) list -> string -> float option
(** Read back a counter total or gauge value; [None] if the series is
    absent or a histogram. Histograms have no single scalar reading —
    snapshots expose their (lossy) mean via [row_value] and their exact
    observation sum via [row_sum] / {!sum}. *)

val sum : ?r:t -> ?labels:(string * string) list -> string -> float option
(** The exact sum of a histogram's observations; [None] if the series
    is absent or not a histogram. The Prometheus exposition ([Expo])
    renders [_sum] from this rather than re-deriving it from the
    quantile summary string. *)

type row = {
  row_name : string;
  row_labels : (string * string) list;
  row_kind : string;              (** ["counter"], ["gauge"] or ["histogram"] *)
  row_value : float;
  (** counter total / gauge value; for histograms this is the {e mean}
      of the observations ([row_sum / row_count], 0 when empty) — a
      lossy convenience for table rendering, not the raw data. *)
  row_count : int;                (** histogram observations; 1 otherwise *)
  row_sum : float;                (** histogram observation sum; [row_value] otherwise *)
  row_buckets : (float * int) list;
  (** histogram (upper bound, count) pairs in ascending bound order,
      per-bucket (non-cumulative), ending with the [infinity] overflow
      bucket; [[]] for counters and gauges. *)
  row_detail : string;            (** histogram quantile summary, else empty *)
}

val snapshot : ?r:t -> unit -> row list
(** Every series, sorted by name then labels. *)

val render : ?title:string -> row list -> string
(** Aligned plain-text table of a snapshot. *)
