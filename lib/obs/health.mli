(** Training-health watchdog: anomaly rules evaluated on the trainer
    tick over a snapshot of the learner's vital signs. Fired alerts are
    retained in the engine, counted on the labeled
    [posetrl.alerts.total{rule=...}] counter, and returned to the caller
    for persistence in the run dir's [alerts.jsonl]. See DESIGN.md §12
    for the rule catalog and default thresholds. *)

type config = {
  collapse_pct : float;
  (** reward-collapse: windowed mean dropped more than this % below the
      trailing best windowed mean *)
  collapse_min_best : float;
  (** |trailing best| must reach this before collapse can fire *)
  q_explosion_abs : float;  (** |q_max| beyond this is an explosion *)
  stall_s : float;          (** seconds without a finished episode *)
  replay_age_factor : float;
  (** replay is stale when mean TD-age exceeds factor × capacity *)
  drift_kl : float;
  (** KL(current ‖ previous action-histogram window) beyond this is an
      abrupt policy shift *)
  max_alerts : int;         (** retained-alert cap (oldest dropped) *)
}

val default_config : config

val rules : string list
(** The rule catalog: ["nan_loss"; "reward_collapse"; "q_explosion";
    "stalled_episode"; "replay_stale"; "action_drift"]. *)

type sample = {
  s_step : int;
  s_episode : int;
  s_loss : float;
  s_mean_reward : float;      (** windowed mean episode reward *)
  s_q_max : float;
  s_replay_size : int;
  s_replay_capacity : int;
  s_replay_age_mean : float;  (** mean TD-age of buffered transitions, steps *)
  s_weights_finite : bool;    (** NaN/Inf scan of the online network *)
  s_actions : int array;      (** action histogram over the last window *)
}
(** One tick's vital signs, assembled by the trainer. *)

type alert = {
  a_rule : string;
  a_step : int;
  a_severity : string;   (** ["error"] or ["warn"] *)
  a_message : string;
  a_value : float;       (** the triggering reading; may be non-finite *)
}

type t
(** A watchdog engine (per training run). *)

val create : ?config:config -> ?registry:Metrics.t -> unit -> t
(** A fresh engine. [registry] receives the
    [posetrl.alerts.total{rule}] counters (default {!Metrics.global}).
    The stalled-episode rule reads {!Clock.now}, so the engine is
    deterministic under {!Clock.with_fake}. *)

val check : t -> sample -> alert list
(** Evaluate every rule against [sample]; returns the alerts that fired
    on this tick. Rules are edge-triggered: a condition fires once when
    it becomes true and re-arms when it clears, so a persistently sick
    run yields one alert per incident, not one per tick. *)

val alerts : t -> alert list
(** Every retained fired alert, oldest first (capped at
    [config.max_alerts]; the counter stays exact past the cap). *)

val kl : int array -> int array -> float
(** KL divergence between two count histograms with +1 Laplace
    smoothing (shorter array zero-padded) — the action-drift distance,
    exposed for the [posetrl explain] drift timeline. *)

val alert_to_json : alert -> Json.t
(** The [alerts.jsonl] record schema ([kind = "alert"]). Non-finite
    values encode as the strings ["nan"]/["inf"]/["-inf"] (JSON has no
    NaN literal). *)

val alert_of_json : Json.t -> alert option
(** Robust inverse of {!alert_to_json}: [None] on malformed records,
    never an exception. *)
