(* Built-in span sinks: ring buffer, JSONL writer, console printer. *)

type t = {
  emit : Event.t -> unit;
  close : unit -> unit;
}

let null = { emit = ignore; close = ignore }

let memory ?(capacity = 4096) () : t * (unit -> Event.t list) =
  let q : Event.t Queue.t = Queue.create () in
  let emit e =
    Queue.add e q;
    if Queue.length q > capacity then ignore (Queue.pop q)
  in
  ({ emit; close = ignore }, fun () -> List.of_seq (Queue.to_seq q))

let jsonl (path : string) : t =
  let oc = open_out path in
  { emit =
      (fun e ->
        output_string oc (Json.to_string (Event.to_json e));
        output_char oc '\n');
    close = (fun () -> close_out oc) }

let console ?(oc = stdout) () : t =
  { emit =
      (fun e ->
        let attrs =
          match e.Event.attrs with
          | [] -> ""
          | kvs ->
            " "
            ^ String.concat " "
                (List.map
                   (fun (k, v) -> k ^ "=" ^ Event.value_to_string v)
                   kvs)
        in
        Printf.fprintf oc "%*s%s %.6fs (self %.6fs)%s\n" (2 * e.Event.depth) ""
          e.Event.name e.Event.dur e.Event.self attrs);
    close = (fun () -> flush oc) }
