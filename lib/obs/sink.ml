(* Built-in span sinks: ring buffer, JSONL writer, console printer. *)

type t = {
  emit : Event.t -> unit;
  close : unit -> unit;
}

let null = { emit = ignore; close = ignore }

let memory ?(capacity = 4096) () : t * (unit -> Event.t list) =
  let q : Event.t Queue.t = Queue.create () in
  let emit e =
    Queue.add e q;
    if Queue.length q > capacity then ignore (Queue.pop q)
  in
  ({ emit; close = ignore }, fun () -> List.of_seq (Queue.to_seq q))

let jsonl ?(append = false) ?(flush_every = 64) (path : string) : t =
  let oc =
    if append then
      open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
    else open_out path
  in
  (* flush on a period so a killed process still leaves every line up to
     the last flush intact and parseable (crash tolerance) *)
  let pending = ref 0 in
  { emit =
      (fun e ->
        output_string oc (Json.to_string (Event.to_json e));
        output_char oc '\n';
        incr pending;
        if flush_every > 0 && !pending >= flush_every then begin
          flush oc;
          pending := 0
        end);
    close = (fun () -> close_out oc) }

let console ?(oc = stdout) () : t =
  { emit =
      (fun e ->
        let attrs =
          match e.Event.attrs with
          | [] -> ""
          | kvs ->
            " "
            ^ String.concat " "
                (List.map
                   (fun (k, v) -> k ^ "=" ^ Event.value_to_string v)
                   kvs)
        in
        Printf.fprintf oc "%*s%s %.6fs (self %.6fs)%s\n" (2 * e.Event.depth) ""
          e.Event.name e.Event.dur e.Event.self attrs);
    close = (fun () -> flush oc) }
