(** Span-event sinks: where completed spans go.

    Three built-ins — an in-memory ring buffer (tests), a JSONL writer
    (offline analysis via [Report]), and a human-readable console
    printer. Sinks are installed into the span layer with
    {!Span.install} / {!Span.with_sink}. *)

type t = {
  emit : Event.t -> unit;
  close : unit -> unit;  (** flush and release resources; idempotent use is the caller's job *)
}

val null : t
(** Discards everything; useful for overhead measurement. *)

val memory : ?capacity:int -> unit -> t * (unit -> Event.t list)
(** Ring buffer keeping the last [capacity] events (default 4096).
    The second component returns the retained events oldest-first. *)

val jsonl : ?append:bool -> ?flush_every:int -> string -> t
(** Write one JSON object per event to the given file path. With
    [~append:true] an existing file is extended instead of truncated
    (resumed runs share one trace). The channel is flushed every
    [flush_every] events (default 64; [<= 0] disables periodic
    flushing), so a killed process still leaves a readable prefix.
    [close] flushes and closes the channel. *)

val console : ?oc:out_channel -> unit -> t
(** Indented, human-readable one-line-per-span output (default stdout). *)
