(* Live-run dashboard renderer. Pure: records in, one frame out — the
   CLI owns the polling loop and the screen clearing, which keeps this
   testable without a terminal. *)

open Posetrl_support

let action_histogram (records : Json.t list) : (int * int) list =
  let counts = Hashtbl.create 37 in
  List.iter
    (fun r ->
      if Runlog.str "kind" r = Some "episode" then
        match Runlog.field "actions" r with
        | Some (Json.Arr actions) ->
          List.iter
            (fun a ->
              match a with
              | Json.Int i ->
                Hashtbl.replace counts i
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts i))
              | _ -> ())
            actions
        | _ -> ())
    records;
  Hashtbl.fold (fun a n acc -> (a, n) :: acc) counts []
  |> List.sort (fun (a1, n1) (a2, n2) -> compare (n2, a1) (n1, a2))

let last_of (xs : (float * float) list) : float option =
  match List.rev xs with (_, y) :: _ -> Some y | [] -> None

let fmt_opt fmt = function Some v -> Printf.sprintf fmt v | None -> "-"

let render ?(width = 60) ?(alerts : Json.t list option = None)
    ?(coverage : Json.t option = None) ?(serve : Json.t option = None)
    ~(id : string) ~(manifest : Json.t) ~(records : Json.t list)
    ~(dropped : int) () : string =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let status = Option.value ~default:"?" (Runlog.str "status" manifest) in
  let kind = Option.value ~default:"?" (Runlog.str "kind" manifest) in
  add "run %s  [%s, %s]\n" id kind status;
  let series kind y = Runlog.series ~kind ~x:"step" ~y records in
  let ticks_step = series "tick" "epsilon" in
  let last_tick key = last_of (series "tick" key) in
  (match List.rev ticks_step with
   | (step, eps) :: _ ->
     add "step %-7.0f episode %-6s eps %.3f  mean-reward %s  loss %s\n" step
       (fmt_opt "%.0f" (last_of (series "tick" "episode")))
       eps
       (fmt_opt "%.3f" (last_tick "mean_reward"))
       (fmt_opt "%.4f" (last_tick "loss"))
   | [] -> add "(no progress records yet)\n");
  (* GC row: present once ticks carry Prof.sample_gc fields *)
  (match last_tick "gc_minor" with
   | Some minor ->
     add "gc   minor %-8.0f major %-6s heap %s MB  alloc %s MB/s\n" minor
       (fmt_opt "%.0f" (last_tick "gc_major"))
       (fmt_opt "%.1f" (last_tick "gc_heap_mb"))
       (fmt_opt "%.1f" (last_tick "gc_alloc_mb_s"))
   | None -> ());
  if dropped > 0 then
    add "(%d torn progress line%s skipped)\n" dropped
      (if dropped = 1 then "" else "s");
  (* Watchdog row. Three states, rendered distinctly so old ledgers are
     never mistaken for healthy ones:
       None    — run predates the watchdog, no alerts file to read;
       Some [] — alerts file present and empty: healthy;
       Some l  — alerts fired: red rows, newest-capped at 5. *)
  (match alerts with
   | None -> add "alerts (not recorded by this run)\n"
   | Some [] -> add "alerts none\n"
   | Some fired ->
     let n = List.length fired in
     add "alerts \027[31m%d fired\027[0m%s\n" n
       (if n > 5 then " (last 5 shown)" else "");
     let shown =
       if n <= 5 then fired
       else List.filteri (fun i _ -> i >= n - 5) fired
     in
     List.iter
       (fun a ->
         let rule = Option.value ~default:"?" (Runlog.str "rule" a) in
         let msg = Option.value ~default:"" (Runlog.str "message" a) in
         let step = Option.value ~default:(-1.0) (Runlog.num "step" a) in
         add "  \027[31m! %-16s step %-8.0f %s\027[0m\n" rule step msg)
       shown);
  (* Coverage row: the run's coverage.json summary (two states — the
     document is absent on pre-coverage ledgers). *)
  (match coverage with
   | None -> add "coverage (not recorded by this run)\n"
   | Some doc ->
     let n k = Runlog.num k doc in
     add "coverage edges %s/%s (%s%%)  entropy %s bits  nodes %s/%s\n"
       (fmt_opt "%.0f" (n "edges_visited"))
       (match Runlog.field "universe" doc with
        | Some u ->
          (match Runlog.field "edges" u with
           | Some (Json.Arr es) -> string_of_int (List.length es)
           | _ -> "-")
        | None -> "-")
       (fmt_opt "%.1f" (n "edge_pct"))
       (fmt_opt "%.2f" (n "entropy_bits"))
       (fmt_opt "%.0f" (n "nodes_visited"))
       (match Runlog.field "universe" doc with
        | Some u ->
          (match Runlog.field "nodes" u with
           | Some (Json.Arr ns) -> string_of_int (List.length ns)
           | _ -> "-")
        | None -> "-"));
  (* Serve row: only present on runs that wrote serve.json (the
     optimization daemon) — train/eval frames are unchanged. *)
  (match serve with
   | None -> ()
   | Some doc ->
     let n k = Runlog.num k doc in
     add "serve reqs %s  hits %s%%  queue %s  p50 %s ms  p99 %s ms  rejected %s\n"
       (fmt_opt "%.0f" (n "requests"))
       (fmt_opt "%.1f" (n "cache_hit_pct"))
       (fmt_opt "%.0f" (n "queue_depth"))
       (fmt_opt "%.2f" (Option.map (fun v -> v *. 1e3) (n "latency_p50_s")))
       (fmt_opt "%.2f" (Option.map (fun v -> v *. 1e3) (n "latency_p99_s")))
       (fmt_opt "%.0f" (n "rejected")));
  let curve label pts =
    match pts with
    | [] -> ()
    | pts ->
      let ys = List.map snd pts in
      add "%-13s n=%-5d last %10.3f  min %10.3f  max %10.3f  %s\n" label
        (List.length ys)
        (List.nth ys (List.length ys - 1))
        (Stats.minimum ys) (Stats.maximum ys)
        (Stats.sparkline ~width ys)
  in
  curve "reward" (series "episode" "reward");
  curve "r_binsize" (series "episode" "r_binsize");
  curve "r_throughput" (series "episode" "r_throughput");
  curve "size gain %" (series "episode" "size_gain_pct");
  curve "epsilon" (series "tick" "epsilon");
  curve "loss" (series "tick" "loss");
  (match action_histogram records with
   | [] -> ()
   | hist ->
     add "\naction selections (episodes so far):\n";
     let max_n = List.fold_left (fun m (_, n) -> max m n) 1 hist in
     List.iteri
       (fun i (action, n) ->
         (* cap the board at 20 rows so huge action spaces stay readable *)
         if i < 20 then
           add "  action %-3d %6d %s\n" action n
             (String.make (max 1 (n * 30 / max_n)) '#'))
       hist);
  Buffer.contents buf
