(** Nested span tracing.

    [with_ name f] times the execution of [f], nests under any
    enclosing span, and emits one {!Event.t} to every installed sink
    when [f] returns (or raises — the event then carries an ["error"]
    attribute and the exception is re-raised).

    With no sink installed, [with_] is a no-op wrapper: no clock read,
    no allocation beyond the closure call — cheap enough to leave on
    every hot path permanently. *)

type t
(** A live span handle, valid only inside its [with_] callback. *)

val with_ : ?attrs:(string * Event.value) list -> string -> (t -> 'a) -> 'a
(** Run the callback under a span named [name] (convention:
    [posetrl.<area>.<name>]). [attrs] seed the event's attributes. *)

val set_attr : t -> string -> Event.value -> unit
(** Attach an attribute to a live span (appended after the seed attrs);
    ignored when tracing is disabled. *)

val enabled : unit -> bool
(** True iff at least one sink is installed. Use to gate attr
    computations that are themselves expensive. *)

val install : Sink.t -> unit
(** Add a sink (events fan out to every installed sink). *)

val remove : Sink.t -> unit
(** Remove a previously installed sink (physical equality); does not
    close it. *)

val with_sink : Sink.t -> (unit -> 'a) -> 'a
(** Install the sink, run the thunk, then remove and close the sink —
    exception-safe. *)

val emit :
  ?attrs:(string * Event.value) list ->
  ?tid:int ->
  name:string -> t_start:float -> dur:float -> unit -> unit
(** Emit a pre-timed complete event (self = dur) at the caller's current
    nesting depth; a no-op with no sink installed. This is how a pool
    owner records per-task spans that were measured on worker domains:
    the workers only take timestamps, and the owner emits after the
    batch drains, so sink state never crosses domains. [tid] defaults to
    the calling domain's id; pool owners pass the worker domain id
    recorded in {!Posetrl_support.Pool.timing} so the event lands on the
    track that actually ran the task.

    The span stack itself is domain-local and the emit path is
    serialized, so spans opened {e on} worker domains (deep inside pass
    or environment code) also trace safely — they nest per-domain and
    their JSONL lines never interleave. *)

val set_alloc_attrs : bool -> unit
(** Opt into per-span allocation attribution: every span event gains
    ["alloc_b"] (bytes allocated on the emitting domain while the span
    was open, including children) and ["self_alloc_b"] (minus direct
    children) attributes, computed online from [Gc.allocated_bytes].
    Off by default; switched on by the profiler ({!Prof}). *)

val alloc_attrs_enabled : unit -> bool
(** Whether per-span allocation attribution is currently on. *)
