(** The run ledger: persistent per-run directories (manifest, progress
    stream, eval tables, trace) plus the reading/compare side behind
    [posetrl runs list|show|compare]. See DESIGN.md §7 "Run ledger" for
    the directory layout and manifest schema. *)

val default_root : string
(** ["runs"] — where auto-named run directories are created. *)

val manifest_path : string -> string
val progress_path : string -> string
val eval_path : string -> string
val trace_path : string -> string
val attrib_path : string -> string
val alerts_path : string -> string
val coverage_path : string -> string
val serve_path : string -> string
(** Paths of the ledger files inside a run directory. *)

(** {1 Writing side} *)

type t
(** An open (in-progress) run. *)

val create :
  ?root:string -> ?dir:string -> name:string ->
  meta:(string * Json.t) list -> unit -> t
(** Start a run: create the directory ([dir] if given, else
    [root/<timestamp>-<name>]), write a ["running"] manifest carrying
    [meta], and open [progress.jsonl]. *)

val dir : t -> string

val set_meta : t -> (string * Json.t) list -> unit
(** Merge fields into the manifest (later keys win) and rewrite it. *)

val progress : t -> Json.t -> unit
(** Append a record to [progress.jsonl]; flushed every few records so a
    killed run keeps a readable prefix. Records normally come from
    {!Runlog.tick_record} / {!Runlog.episode_record}. *)

val write_eval : t -> Json.t -> unit
(** Write [eval.json] (atomic replace). *)

val write_attrib : t -> Json.t -> unit
(** Write [attrib.json] (atomic replace) — normally
    [Posetrl_rl.Attrib.to_json] of the trainer's attribution table. *)

val write_coverage : t -> Json.t -> unit
(** Write [coverage.json] (atomic replace) — normally
    [Coverage.to_json] of the trainer's (or eval's) coverage table. *)

val write_serve : t -> Json.t -> unit
(** Write [serve.json] (atomic replace) — the serve daemon's rolling
    stats snapshot (requests, cache hit rate, latency percentiles),
    normally [Posetrl_serve.Server.stats_json]. *)

val alert : t -> Json.t -> unit
(** Append a watchdog alert record to [alerts.jsonl] and flush
    immediately — alerts are rare and must survive a crash right after
    firing. The file is created (empty) at {!create}, so a healthy
    completed run is distinguishable from one predating the watchdog. *)

val finish : ?result:(string * Json.t) list -> t -> unit
(** Close the progress stream and rewrite the manifest with
    [status = "complete"], the wall-clock duration ([wall_s]) and the
    final [result] object. Idempotent. *)

(** {1 Reading side} *)

type info = {
  run_dir : string;
  run_id : string;
  manifest : Json.t;
}

val load : string -> info
(** Load a run directory.
    @raise Failure if it has no [manifest.json]. *)

val list_runs : ?root:string -> unit -> info list
(** Every run directory under [root], in creation order: manifest mtime
    first, run id as the tiebreak — so same-second manifests (parallel
    CI jobs) list deterministically. Never raises: a missing/unreadable
    [root] yields [[]], and entries whose manifest is unreadable or
    corrupt are skipped. *)

val find : ?root:string -> string -> info
(** Resolve an id (under [root]) or a direct run-directory path.
    @raise Failure if neither resolves. *)

val read_progress : info -> Json.t list * int
(** The progress records plus the count of torn/unparseable lines;
    [([], 0)] if the stream is absent. *)

val read_eval : info -> Json.t option

val read_attrib : info -> Json.t option
(** The run's attribution document. Never raises: [None] means the file
    is absent (run predates the watchdog layer) {e or} corrupt — either
    way the caller renders "no data". *)

val read_coverage : info -> Json.t option
(** The run's coverage document. Never raises: [None] means absent (run
    predates the coverage layer) {e or} corrupt. *)

val read_serve : info -> Json.t option
(** The run's serve-stats document. Never raises: [None] means absent
    (not a serve run) {e or} corrupt. *)

val read_alerts : info -> (Json.t list * int) option
(** The run's alert records plus the torn-line count. Never raises:
    [None] when [alerts.jsonl] is absent (pre-watchdog run);
    [Some ([], 0)] when present but empty (healthy run). *)

(** {1 Cross-run comparison} *)

type thresholds = {
  max_reward_drop_pct : float;
  (** regression when final mean reward drops more than this % vs base *)
  max_size_drop_pts : float;
  (** regression when a suite's avg size reduction drops more than this
      many percentage points *)
  max_wall_factor : float;
  (** regression when candidate wall time exceeds factor × base;
      [<= 0] disables (default — wall time is noisy, and a CI gate
      should stay deterministic) *)
}

val default_thresholds : thresholds
(** [{ max_reward_drop_pct = 10.0; max_size_drop_pts = 2.0;
      max_wall_factor = 0.0 }] *)

type delta = {
  d_metric : string;
  d_base : float option;
  d_cand : float option;
  d_regressed : bool;
  d_note : string;
}

val compare_runs :
  ?thresholds:thresholds -> base:info -> cand:info -> unit -> delta list
(** Diff final mean reward (manifests), per-suite avg size reduction
    (eval.json) and wall time between two runs. Metrics missing on
    either side are reported but never count as regressions. *)

val has_regression : delta list -> bool
(** True iff any delta regressed — [posetrl runs compare] exits non-zero
    on this, making the ledger usable as a CI gate. *)
