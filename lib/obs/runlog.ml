(* Run-ledger persistence format: JSON document files (manifest.json,
   eval.json), JSONL streams (progress.jsonl), and the progress-record
   schema shared by the trainer CLI, the bench harness and the tests.

   Document writes go through a tmp-file + rename so a crash mid-write
   never leaves a torn manifest; JSONL reads skip unparseable lines so a
   stream truncated by a killed process is still usable up to the last
   flush. *)

(* --- JSON file IO -------------------------------------------------------- *)

let write_json_file (path : string) (j : Json.t) : unit =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string j);
      output_char oc '\n');
  Sys.rename tmp path

let read_json_file (path : string) : Json.t =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      Json.of_string (String.trim (really_input_string ic n)))

(* Parse a JSONL stream, dropping lines that fail to parse (a crash can
   tear the last line). Returns the records plus the dropped-line count
   so callers can surface data loss instead of hiding it. *)
let read_jsonl (path : string) : Json.t list * int =
  let ic = open_in path in
  let records = ref [] in
  let dropped = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match Json.of_string line with
             | j -> records := j :: !records
             | exception Json.Parse_error _ -> incr dropped
         done
       with End_of_file -> ());
      (List.rev !records, !dropped))

let append_jsonl_line (oc : out_channel) (j : Json.t) : unit =
  output_string oc (Json.to_string j);
  output_char oc '\n'

(* --- field accessors ------------------------------------------------------ *)

let str (key : string) (j : Json.t) : string option =
  match Json.member key j with Some (Json.Str s) -> Some s | _ -> None

let num (key : string) (j : Json.t) : float option =
  match Json.member key j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let field (key : string) (j : Json.t) : Json.t option = Json.member key j

(* nested lookup: [path ["result"; "final_mean_reward"] manifest] *)
let rec path (keys : string list) (j : Json.t) : Json.t option =
  match keys with
  | [] -> Some j
  | k :: rest -> Option.bind (Json.member k j) (path rest)

let path_num (keys : string list) (j : Json.t) : float option =
  match path keys j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

(* --- progress-record schema ----------------------------------------------- *)

(* Two record kinds share progress.jsonl, discriminated by "kind":
   "tick" — the trainer's periodic windowed means (every 200 steps);
   "episode" — one record per finished episode with the full reward
   decomposition (unweighted Eqn-2/3 component sums). *)

let tick_record ?q_mean ?q_max ?gc_minor ?gc_major ?gc_heap_mb ?gc_alloc_mb_s
    ~(step : int) ~(episode : int)
    ~(epsilon : float) ~(mean_reward : float) ~(mean_size_gain : float)
    ~(r_binsize : float) ~(r_throughput : float) ~(loss : float) () : Json.t =
  let opt_f k = function Some v -> [ (k, Json.Float v) ] | None -> [] in
  let opt_i k = function Some v -> [ (k, Json.Int v) ] | None -> [] in
  Json.Obj
    ([ ("kind", Json.Str "tick");
       ("step", Json.Int step);
       ("episode", Json.Int episode);
       ("epsilon", Json.Float epsilon);
       ("mean_reward", Json.Float mean_reward);
       ("mean_size_gain", Json.Float mean_size_gain);
       ("r_binsize", Json.Float r_binsize);
       ("r_throughput", Json.Float r_throughput);
       ("loss", Json.Float loss) ]
     @ opt_f "q_mean" q_mean
     @ opt_f "q_max" q_max
     @ opt_i "gc_minor" gc_minor
     @ opt_i "gc_major" gc_major
     @ opt_f "gc_heap_mb" gc_heap_mb
     @ opt_f "gc_alloc_mb_s" gc_alloc_mb_s)

let episode_record ?(actions = []) ?step_rewards ~(episode : int) ~(step : int)
    ~(reward : float) ~(r_binsize : float) ~(r_throughput : float)
    ~(size_gain_pct : float) ~(thru_gain_pct : float) ~(epsilon : float)
    ~(loss : float) () : Json.t =
  let steps_field =
    (* per-step reward triples aligned with [actions]; %.17g floats
       round-trip exactly, so attribution recomputed from the ledger
       matches the streaming table float for float *)
    match step_rewards with
    | None -> []
    | Some triples ->
      [ ("steps",
         Json.Arr
           (List.map
              (fun (r, rb, rt) ->
                Json.Obj
                  [ ("r", Json.Float r);
                    ("rb", Json.Float rb);
                    ("rt", Json.Float rt) ])
              triples)) ]
  in
  Json.Obj
    ([ ("kind", Json.Str "episode");
       ("episode", Json.Int episode);
       ("step", Json.Int step);
       ("reward", Json.Float reward);
       ("r_binsize", Json.Float r_binsize);
       ("r_throughput", Json.Float r_throughput);
       ("size_gain_pct", Json.Float size_gain_pct);
       ("thru_gain_pct", Json.Float thru_gain_pct);
       ("epsilon", Json.Float epsilon);
       ("loss", Json.Float loss);
       ("actions", Json.Arr (List.map (fun a -> Json.Int a) actions)) ]
     @ steps_field)

(* Extract an (x, y) series from progress records of one kind; records
   missing either field are skipped. *)
let series ~(kind : string) ~(x : string) ~(y : string)
    (records : Json.t list) : (float * float) list =
  List.filter_map
    (fun r ->
      if str "kind" r = Some kind then
        match num x r, num y r with
        | Some xv, Some yv -> Some (xv, yv)
        | _ -> None
      else None)
    records
