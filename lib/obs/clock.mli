(** The time source behind all observability timestamps.

    Spans and timing histograms read [now ()], which defaults to the
    wall clock but can be swapped for a deterministic fake in tests
    ([with_fake]) so duration and self-time accounting is exact.
    Installing a source also mirrors it into [Posetrl_support.Pool]'s
    clock ref, so pool timing stamps (taken on worker domains) tick on
    the same clock. *)

val now : unit -> float
(** Current time in seconds. Monotone under the default source for the
    purposes of span timing (durations are differences of [now]). *)

val set : (unit -> float) -> unit
(** Replace the time source. *)

val reset : unit -> unit
(** Restore the default (wall-clock) source. *)

val with_fake : ?start:float -> ((float -> unit) -> 'a) -> 'a
(** [with_fake f] installs a fake clock starting at [start] (default 0)
    and calls [f advance] where [advance d] moves the clock forward by
    [d] seconds. The previous source is restored on exit, including on
    exceptions. *)
