(** Offline trace analysis: fold a JSONL trace (written by
    {!Sink.jsonl}) into per-span cumulative/self-time aggregates and
    the per-pass / per-action tables surfaced by [posetrl report]. *)

type span_row = {
  sr_name : string;
  sr_count : int;
  sr_cum : float;                (** Σ dur, seconds *)
  sr_self : float;               (** Σ self, seconds *)
  sr_max : float;                (** max single dur, seconds *)
}

type pass_row = {
  pr_pass : string;
  pr_count : int;
  pr_cum : float;
  pr_self : float;
  pr_d_insns : int;              (** Σ instruction-count delta (size proxy) *)
}

type action_row = {
  ar_action : int;
  ar_passes : string;
  ar_count : int;
  ar_cum : float;
  ar_d_size : float;             (** Σ object-size delta, bytes *)
  ar_mean_reward : float;
}

val read_jsonl : string -> Event.t list
(** Parse a JSONL trace file; blank lines are skipped.
    @raise Failure on a malformed line (with its line number). *)

val spans : Event.t list -> span_row list
(** Aggregate by span name, sorted by cumulative time descending. *)

val passes : Event.t list -> pass_row list
(** Aggregate events carrying a ["pass"] attribute by pass name,
    sorted by cumulative time descending. *)

val actions : Event.t list -> action_row list
(** Aggregate [posetrl.env.step] events by action index. *)

val top : int -> 'a list -> 'a list
(** First [k] elements (the whole list if shorter). *)

val render : ?top_k:int -> Event.t list -> string
(** The full report: span summary, per-pass table, per-action table. *)
