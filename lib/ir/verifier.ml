(* Structural well-formedness checks for MiniIR.

   Every pass is required to produce IR that passes verification; the test
   suite runs the verifier after each pass on each workload. *)

module SSet = Set.Make (String)

type error = { func : string; block : string option; message : string }

let errf ~func ?block fmt =
  Printf.ksprintf (fun message -> { func; block; message }) fmt

let error_to_string e =
  match e.block with
  | Some b -> Printf.sprintf "%s/%s: %s" e.func b e.message
  | None -> Printf.sprintf "%s: %s" e.func e.message

(* SSA dominance checking (enabled with [~dom:true]): every use of a
   register must be dominated by its definition — same-block uses by
   instruction position, cross-block uses via the dominator tree — and a
   phi's incoming value must be dominated at the corresponding
   predecessor (reflexively: defined in the predecessor itself or above
   it). Parameters dominate everything; uses inside unreachable blocks
   are skipped (no path reaches them), but a definition sitting in an
   unreachable block never dominates a reachable use. *)
let dominance_errors (f : Func.t) (cfg : Cfg.t) (reach : SSet.t) : error list =
  let errors = ref [] in
  let err ~block fmt =
    Printf.ksprintf
      (fun message -> errors := { func = f.Func.name; block = Some block; message } :: !errors)
      fmt
  in
  let dom = Dom.compute cfg in
  (* def site: register -> (block label, index in block); params absent *)
  let def_site = Hashtbl.create 64 in
  List.iter
    (fun (b : Block.t) ->
      List.iteri
        (fun idx (i : Instr.t) ->
          if i.Instr.id >= 0 then Hashtbl.replace def_site i.Instr.id (b.Block.label, idx))
        b.Block.insns)
    f.Func.blocks;
  let params = Hashtbl.create 8 in
  List.iter (fun (r, _) -> Hashtbl.replace params r ()) f.Func.params;
  let is_param r = Hashtbl.mem params r in
  (* [r] used at position [idx] of reachable block [block]; [idx] =
     max_int for terminator uses *)
  let check_use ~block ~idx ~what r =
    if not (is_param r) then
      match Hashtbl.find_opt def_site r with
      | None -> () (* undefined register: the structural check reports it *)
      | Some (db, didx) ->
        if not (SSet.mem db reach) then
          err ~block "%s %%%d not dominated by its definition (defined in unreachable %s)" what r db
        else if String.equal db block then begin
          if didx >= idx then
            err ~block "%s %%%d before its definition in the same block" what r
        end
        else if not (Dom.strictly_dominates dom db block) then
          err ~block "%s %%%d not dominated by its definition in %s" what r db
  in
  let check_phi_incoming ~block ~phi (pred, v) =
    match v with
    | Value.Reg r when not (is_param r) ->
      if SSet.mem pred reach then begin
        match Hashtbl.find_opt def_site r with
        | None -> ()
        | Some (db, _) ->
          if not (SSet.mem db reach) then
            err ~block "phi %%%d incoming %%%d from %s defined in unreachable %s" phi r pred db
          else if not (Dom.dominates dom db pred) then
            err ~block "phi %%%d incoming %%%d does not dominate predecessor %s" phi r pred
      end
    | _ -> ()
  in
  List.iter
    (fun (b : Block.t) ->
      let block = b.Block.label in
      if SSet.mem block reach then begin
        List.iteri
          (fun idx (i : Instr.t) ->
            match i.Instr.op with
            | Instr.Phi (_, incs) ->
              List.iter (check_phi_incoming ~block ~phi:i.Instr.id) incs
            | op ->
              List.iter
                (fun v ->
                  match v with
                  | Value.Reg r -> check_use ~block ~idx ~what:"use of" r
                  | _ -> ())
                (Instr.operands op))
          b.Block.insns;
        List.iter
          (fun v ->
            match v with
            | Value.Reg r -> check_use ~block ~idx:max_int ~what:"terminator use of" r
            | _ -> ())
          (Instr.term_operands b.Block.term)
      end)
    f.Func.blocks;
  List.rev !errors

let verify_func ?(dom = false) (m : Modul.t) (f : Func.t) : error list =
  if Func.is_declaration f then []
  else begin
    let errors = ref [] in
    let err ?block fmt = Printf.ksprintf (fun message -> errors := { func = f.Func.name; block; message } :: !errors) fmt in
    let labels = List.map (fun b -> b.Block.label) f.Func.blocks in
    let label_set = SSet.of_list labels in
    (* unique labels *)
    if List.length labels <> SSet.cardinal label_set then
      err "duplicate block labels";
    (* single definition per register; defs below next_id *)
    let defs = Hashtbl.create 64 in
    List.iter (fun (r, _) ->
        if Hashtbl.mem defs r then err "duplicate parameter register %%%d" r;
        Hashtbl.replace defs r ()) f.Func.params;
    Func.iter_insns
      (fun b i ->
        if i.Instr.id >= 0 then begin
          if Hashtbl.mem defs i.Instr.id then
            err ~block:b.Block.label "register %%%d defined more than once" i.Instr.id;
          Hashtbl.replace defs i.Instr.id ();
          if i.Instr.id >= f.Func.next_id then
            err ~block:b.Block.label "register %%%d >= next_id %d" i.Instr.id f.Func.next_id
        end)
      f;
    (* every used register is defined somewhere; terminator labels exist;
       phis lead their block; phi preds match CFG preds *)
    let cfg = Cfg.of_func f in
    let reach = Cfg.reachable cfg in
    List.iter
      (fun b ->
        let block = b.Block.label in
        let check_value v =
          match v with
          | Value.Reg r ->
            if not (Hashtbl.mem defs r) then err ~block "use of undefined register %%%d" r
          | Value.Global g ->
            if Option.is_none (Modul.find_global m g)
               && Option.is_none (Modul.find_func m g) then
              err ~block "use of undefined global @%s" g
          | Value.Const _ -> ()
        in
        let seen_non_phi = ref false in
        List.iter
          (fun i ->
            (match i.Instr.op with
             | Instr.Phi (_, incs) ->
               if !seen_non_phi then err ~block "phi %%%d after non-phi instruction" i.Instr.id;
               let inc_labels = List.map fst incs in
               let preds =
                 if SSet.mem block reach then
                   List.filter (fun p -> SSet.mem p reach) (Cfg.preds cfg block)
                 else Cfg.preds cfg block
               in
               let inc_set = SSet.of_list inc_labels in
               if List.length inc_labels <> SSet.cardinal inc_set then
                 err ~block "phi %%%d has duplicate incoming labels" i.Instr.id;
               List.iter
                 (fun p ->
                   if not (SSet.mem p inc_set) then
                     err ~block "phi %%%d missing incoming for predecessor %s" i.Instr.id p)
                 preds;
               SSet.iter
                 (fun l ->
                   if not (List.exists (String.equal l) preds) then
                     err ~block "phi %%%d has incoming for non-predecessor %s" i.Instr.id l)
                 inc_set
             | _ -> seen_non_phi := true);
            (match i.Instr.op with
             | Instr.Call (_, g, _) ->
               (match Modul.find_func m g with
                | Some callee ->
                  if List.length callee.Func.params
                     <> List.length (Instr.operands i.Instr.op) then
                    err ~block "call @%s: arity mismatch" g
                | None -> err ~block "call to undefined function @%s" g)
             | _ -> ());
            List.iter check_value (Instr.operands i.Instr.op);
            let ty = Instr.result_ty i.Instr.op in
            if Types.equal ty Types.Void && i.Instr.id >= 0 then
              err ~block "void-result instruction defines %%%d" i.Instr.id;
            if (not (Types.equal ty Types.Void)) && i.Instr.id < 0 then
              err ~block "value-producing %s has no destination" (Instr.opcode_name i.Instr.op))
          b.Block.insns;
        List.iter check_value (Instr.term_operands b.Block.term);
        List.iter
          (fun l ->
            if not (SSet.mem l label_set) then
              err ~block "branch to undefined label %s" l)
          (Block.successors b);
        (* return type matches *)
        match b.Block.term with
        | Instr.Ret None ->
          if not (Types.equal f.Func.ret Types.Void) then
            err ~block "ret void in non-void function"
        | Instr.Ret (Some (ty, _)) ->
          if not (Types.equal f.Func.ret ty) then
            err ~block "ret type %s does not match function type %s"
              (Types.to_string ty) (Types.to_string f.Func.ret)
        | _ -> ())
      f.Func.blocks;
    let structural = List.rev !errors in
    if dom then structural @ dominance_errors f cfg reach else structural
  end

let verify_module ?(dom = false) (m : Modul.t) : error list =
  let dup_names =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun f ->
        let n = f.Func.name in
        if Hashtbl.mem seen n then Some (errf ~func:n "duplicate function name")
        else begin Hashtbl.add seen n (); None end)
      m.Modul.funcs
  in
  dup_names @ List.concat_map (verify_func ~dom m) m.Modul.funcs

(* Raise on invalid IR; used in tests and by the pass manager's debug mode. *)
exception Invalid of string

let check ?(dom = false) m =
  match verify_module ~dom m with
  | [] -> ()
  | errs ->
    raise (Invalid (String.concat "\n" (List.map error_to_string errs)))

let is_valid ?(dom = false) m = verify_module ~dom m = []
