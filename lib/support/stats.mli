(** Summary statistics over float lists; produce the min/avg/max columns
    of the evaluation tables. Empty-list inputs yield [nan] (except
    [variance]/[stddev], which are 0 for fewer than two samples). *)

val mean : float list -> float
val minimum : float list -> float
val maximum : float list -> float
val variance : float list -> float
(** Sample (n−1) variance. *)

val stddev : float list -> float

val geomean : float list -> float
(** @raise Invalid_argument on non-positive values. *)

val median : float list -> float

type summary = { n : int; min : float; mean : float; max : float; stddev : float }

val summarize : float list -> summary

val sparkline : ?width:int -> float list -> string
(** Unicode block-character rendering of a series (▁▂▃▄▅▆▇█),
    downsampled to [width] columns (default 60) by bucket-averaging.
    Non-finite samples are dropped; empty input yields [""], a flat
    series renders at mid-height. Used by [posetrl runs show] for the
    training-curve views of the run ledger. *)

val pct_reduction : base:float -> float -> float
(** [pct_reduction ~base v] = [100 * (base - v) / base]; positive means
    [v] is a reduction. *)

val pct_improvement : base:float -> float -> float
(** [100 * (v - base) / base] for higher-is-better metrics. *)
