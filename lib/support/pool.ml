(* A fixed-size domain pool: the multicore substrate for parallel suite
   evaluation and batch-parallel linear algebra.

   Design goals, in priority order:

   1. Determinism. [map] returns results in input order, and every task
      is an independent closure over its own input — a [map] over a pure
      function is byte-identical to the sequential [Array.map],
      regardless of [jobs] or scheduling. Callers that need randomness
      inside tasks must derive an independent seed per task (e.g. from
      the task index) rather than sharing a stream across tasks; see
      DESIGN.md §9 for the determinism contract.

   2. Spawn once. Domains are expensive (~hundreds of µs plus a slice of
      minor heap each); the pool spawns [jobs] worker domains at
      [create] and reuses them across every [map]. Work moves through a
      single Mutex/Condition-protected queue.

   3. Honest failure. A task exception does not poison the pool: the
      remaining tasks still run, and [map] re-raises the exception of
      the lowest-indexed failing task (with its backtrace) after the
      batch drains — deterministic even when several tasks fail.

   4. Graceful shutdown. [shutdown] drains nothing: it flags the pool,
      wakes every worker and joins them. It is idempotent, and a pool
      used after shutdown raises [Invalid_argument] rather than hanging.

   [jobs <= 1] is the degenerate pool: no domains are spawned and [map]
   runs inline on the caller — the zero-cost sequential baseline the
   determinism gate compares against. *)

type t = {
  p_jobs : int;
  p_queue : (unit -> unit) Queue.t;
  p_lock : Mutex.t;
  p_work : Condition.t;        (* signalled on enqueue and on shutdown *)
  mutable p_workers : unit Domain.t array;
  mutable p_shutdown : bool;
}

type timing = {
  t_index : int;               (* task index within the batch *)
  t_start : float;             (* clock reading at task start *)
  t_dur : float;               (* wall seconds spent in the task *)
  t_domain : int;              (* id of the domain that ran the task *)
}

(* Timing stamps read this instead of Unix.gettimeofday directly so the
   obs layer's Clock (which owns every other timestamp) can install a
   fake here too — pool-utilization math then becomes exactly testable.
   Workers read it concurrently; installed sources must be domain-safe
   (the fakes are a plain ref read, which is fine for tests). *)
let clock : (unit -> float) ref = ref Unix.gettimeofday

let jobs (t : t) = t.p_jobs

let is_shutdown (t : t) =
  Mutex.lock t.p_lock;
  let s = t.p_shutdown in
  Mutex.unlock t.p_lock;
  s

(* Worker loop: pull a task under the lock, run it outside the lock.
   Tasks are pre-wrapped and never raise; a worker only exits when the
   pool is shut down and the queue is empty (in-flight batches drain). *)
let rec worker_loop (t : t) : unit =
  Mutex.lock t.p_lock;
  while Queue.is_empty t.p_queue && not t.p_shutdown do
    Condition.wait t.p_work t.p_lock
  done;
  if Queue.is_empty t.p_queue then begin
    (* shutdown and no work left *)
    Mutex.unlock t.p_lock;
    ()
  end
  else begin
    let task = Queue.pop t.p_queue in
    Mutex.unlock t.p_lock;
    task ();
    worker_loop t
  end

let create ?name:(_ = "pool") ~(jobs : int) () : t =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    { p_jobs = jobs;
      p_queue = Queue.create ();
      p_lock = Mutex.create ();
      p_work = Condition.create ();
      p_workers = [||];
      p_shutdown = false }
  in
  (* workers capture [t] itself, so they observe [p_shutdown] flips *)
  if jobs > 1 then
    t.p_workers <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown (t : t) : unit =
  Mutex.lock t.p_lock;
  let already = t.p_shutdown in
  t.p_shutdown <- true;
  Condition.broadcast t.p_work;
  Mutex.unlock t.p_lock;
  if not already then Array.iter Domain.join t.p_workers

let with_pool ?name ~(jobs : int) (f : t -> 'a) : 'a =
  let t = create ?name ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* The deterministic map at the heart of the pool. Results land in a
   per-index slot; completion is tracked by a counter under the pool
   lock, which doubles as the memory barrier that publishes worker
   writes to the caller. *)
let map_timed (t : t) (f : 'a -> 'b) (xs : 'a array) : 'b array * timing array =
  if is_shutdown t then invalid_arg "Pool.map: pool is shut down";
  let n = Array.length xs in
  if n = 0 then ([||], [||])
  else if t.p_jobs = 1 then begin
    (* inline sequential path: same code shape, no queue traffic *)
    let timings =
      Array.make n { t_index = 0; t_start = 0.0; t_dur = 0.0; t_domain = 0 }
    in
    let results =
      Array.mapi
        (fun i x ->
          let t0 = !clock () in
          let r = f x in
          timings.(i) <-
            { t_index = i; t_start = t0; t_dur = !clock () -. t0;
              t_domain = (Domain.self () :> int) };
          r)
        xs
    in
    (results, timings)
  end
  else begin
    let results : 'b option array = Array.make n None in
    let timings =
      Array.make n { t_index = 0; t_start = 0.0; t_dur = 0.0; t_domain = 0 }
    in
    let first_err : (int * exn * Printexc.raw_backtrace) option ref = ref None in
    let remaining = ref n in
    let task i () =
      let t0 = !clock () in
      let outcome =
        match f xs.(i) with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      let dur = !clock () -. t0 in
      Mutex.lock t.p_lock;
      timings.(i) <-
        { t_index = i; t_start = t0; t_dur = dur;
          t_domain = (Domain.self () :> int) };
      (match outcome with
       | Ok v -> results.(i) <- Some v
       | Error (e, bt) ->
         (match !first_err with
          | Some (j, _, _) when j < i -> ()
          | _ -> first_err := Some (i, e, bt)));
      decr remaining;
      if !remaining = 0 then Condition.broadcast t.p_work;
      Mutex.unlock t.p_lock
    in
    Mutex.lock t.p_lock;
    for i = 0 to n - 1 do
      Queue.push (task i) t.p_queue
    done;
    Condition.broadcast t.p_work;
    (* The caller waits on the same condition the workers use for work
       arrival; spurious wakeups just re-check [remaining]. *)
    while !remaining > 0 do
      Condition.wait t.p_work t.p_lock
    done;
    Mutex.unlock t.p_lock;
    match !first_err with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      ( Array.map (function Some v -> v | None -> assert false) results,
        timings )
  end

let map (t : t) (f : 'a -> 'b) (xs : 'a array) : 'b array =
  fst (map_timed t f xs)

let map_list (t : t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  Array.to_list (map t f (Array.of_list xs))
