(** A fixed-size domain pool with a deterministic [map].

    The pool spawns [jobs] worker domains once at {!create} and feeds
    them through a single Mutex/Condition work queue. {!map} preserves
    input order, propagates the exception of the lowest-indexed failing
    task, and — over a pure function — returns byte-identical results
    to [Array.map] regardless of [jobs]. See DESIGN.md §9 "Multicore
    execution" for the determinism contract.

    Intended use: one owner domain submits batches; tasks must not call
    back into the same pool (a nested [map] can deadlock once every
    worker is busy). *)

type t

val create : ?name:string -> jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs] worker domains ([jobs = 1] spawns
    none — [map] then runs inline on the caller).
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The pool size given at creation. *)

val is_shutdown : t -> bool

val shutdown : t -> unit
(** Wake and join every worker. Queued-but-unstarted work still drains
    first; idempotent — a second call is a no-op. *)

val with_pool : ?name:string -> jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] over a fresh pool and shuts it down on
    the way out, exception or not. *)

type timing = {
  t_index : int;   (** task index within the batch *)
  t_start : float; (** {!clock} reading at task start *)
  t_dur : float;   (** wall seconds spent in the task *)
  t_domain : int;  (** id of the domain that ran the task (0 = main) *)
}

val clock : (unit -> float) ref
(** The time source behind {!timing} stamps, defaulting to
    [Unix.gettimeofday]. [Posetrl_obs.Clock] mirrors its fake into this
    so pool-utilization accounting is exactly testable; installed
    sources are read concurrently from worker domains and must be
    domain-safe. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] runs [f xs.(i)] for every [i] across the pool and
    returns the results in input order. If any task raised, the
    exception of the lowest-indexed failing task is re-raised (with its
    backtrace) after the whole batch has drained — the pool stays
    usable.
    @raise Invalid_argument if the pool is shut down. *)

val map_timed : t -> ('a -> 'b) -> 'a array -> 'b array * timing array
(** Like {!map}, also returning per-task wall timings (indexed like the
    input) — the feed for per-task spans and [posetrl.pool.*] metrics. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
