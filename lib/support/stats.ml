(* Summary statistics over float lists; used by the evaluation harness to
   produce the min/avg/max columns of the paper's tables. *)

let mean = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let minimum = function
  | [] -> nan
  | x :: rest -> List.fold_left Float.min x rest

let maximum = function
  | [] -> nan
  | x :: rest -> List.fold_left Float.max x rest

let variance l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean l in
    let n = float_of_int (List.length l) in
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l /. (n -. 1.0)

let stddev l = sqrt (variance l)

(* Geometric mean of strictly positive values. *)
let geomean l =
  match l with
  | [] -> nan
  | _ ->
    let logs = List.map (fun x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
        log x) l
    in
    exp (mean logs)

let median l =
  match l with
  | [] -> nan
  | _ ->
    let arr = Array.of_list l in
    Array.sort compare arr;
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2)
    else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

type summary = { n : int; min : float; mean : float; max : float; stddev : float }

let summarize l =
  { n = List.length l;
    min = minimum l;
    mean = mean l;
    max = maximum l;
    stddev = stddev l }

(* Unicode block-character sparkline of a series, downsampled to [width]
   columns by bucket-averaging. Non-finite samples are dropped; a flat
   series renders at mid-height so it stays visible. *)
let spark_levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                      "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline ?(width = 60) (l : float list) : string =
  let xs = List.filter Float.is_finite l in
  match xs with
  | [] -> ""
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let cols = min width n in
    (* bucket i covers samples [i*n/cols, (i+1)*n/cols) *)
    let bucket i =
      let lo = i * n / cols and hi = max (i * n / cols + 1) ((i + 1) * n / cols) in
      let sum = ref 0.0 in
      for j = lo to hi - 1 do sum := !sum +. arr.(j) done;
      !sum /. float_of_int (hi - lo)
    in
    let vals = Array.init cols bucket in
    let lo = Array.fold_left Float.min vals.(0) vals in
    let hi = Array.fold_left Float.max vals.(0) vals in
    let b = Buffer.create (cols * 3) in
    Array.iter
      (fun v ->
        let level =
          if hi -. lo <= 0.0 then 3
          else
            let t = (v -. lo) /. (hi -. lo) in
            min 7 (max 0 (int_of_float (t *. 7.999)))
        in
        Buffer.add_string b spark_levels.(level))
      vals;
    Buffer.contents b

(* Percentage change of [v] relative to [base]: positive = reduction. *)
let pct_reduction ~base v =
  if base = 0.0 then 0.0 else 100.0 *. (base -. v) /. base

(* Percentage improvement (higher-is-better metric). *)
let pct_improvement ~base v =
  if base = 0.0 then 0.0 else 100.0 *. (v -. base) /. base
