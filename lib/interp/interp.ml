(* MiniIR interpreter.

   Plays two roles in the reproduction:
   - it is the "run the binaries and measure execution time" half of the
     paper's evaluation (Table V, Fig 5a/5b): every executed operation is
     charged an abstract cycle cost from a small machine model;
   - it is the oracle for differential testing of passes: a transformed
     module must produce the same return value and output as the original.

   Memory is a flat little-endian byte array; globals live at the bottom,
   allocas on a bump stack that unwinds at function return. *)

open Posetrl_ir

type value =
  | VInt of int64
  | VFloat of float
  | VPtr of int
  | VVec of value array
  | VUndef

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

type outcome = {
  ret : value;
  cycles : int;
  dyn_insns : int;
  output : string;
}

(* --- machine cost model ------------------------------------------------- *)

(* Abstract per-operation cycle cost; one vector op costs the same as its
   scalar counterpart, which is what makes vectorization pay off. *)
let op_cost (op : Instr.op) : int =
  match op with
  | Instr.Binop ((Instr.Sdiv | Instr.Udiv | Instr.Srem | Instr.Urem), _, _, _) -> 24
  | Instr.Binop (Instr.Fdiv, _, _, _) -> 18
  | Instr.Binop ((Instr.Mul | Instr.Fmul), _, _, _) -> 4
  | Instr.Binop ((Instr.Fadd | Instr.Fsub), _, _, _) -> 3
  | Instr.Binop (_, _, _, _) -> 1
  | Instr.Icmp _ | Instr.Fcmp _ -> 1
  | Instr.Select _ -> 1
  | Instr.Cast _ -> 1
  | Instr.Alloca _ -> 1
  | Instr.Load _ -> 4
  | Instr.Store _ -> 2
  | Instr.Gep _ -> 1
  | Instr.Call _ | Instr.Callind _ -> 6
  | Instr.Phi _ -> 0
  | Instr.Memcpy _ -> 8 (* plus per-byte charge at execution *)
  | Instr.Expect _ -> 0
  | Instr.Intrinsic _ -> 2

let term_cost (t : Instr.term) : int =
  match t with
  | Instr.Ret _ -> 2
  | Instr.Br _ -> 1
  | Instr.Cbr _ -> 2
  | Instr.Switch _ -> 3
  | Instr.Unreachable -> 0

(* --- memory -------------------------------------------------------------- *)

type mem = {
  mutable data : Bytes.t;
  mutable brk : int;
  global_addr : (string, int) Hashtbl.t;
  func_addr : (string, int) Hashtbl.t;
  addr_func : (int, string) Hashtbl.t;
}

let mem_grow (mem : mem) (needed : int) =
  let cur = Bytes.length mem.data in
  if needed > cur then begin
    let size = max needed (cur * 2) in
    let nd = Bytes.make size '\000' in
    Bytes.blit mem.data 0 nd 0 cur;
    mem.data <- nd
  end

let alloc (mem : mem) (bytes : int) : int =
  let addr = mem.brk in
  (* 8-byte alignment *)
  let bytes = (bytes + 7) land lnot 7 in
  mem.brk <- mem.brk + bytes;
  mem_grow mem mem.brk;
  addr

let check_addr (mem : mem) addr size =
  if addr < 8 || addr + size > Bytes.length mem.data then
    trap "out-of-bounds access at %d (size %d)" addr size

let load_scalar (mem : mem) (ty : Types.t) (addr : int) : value =
  let size = Types.size_bytes ty in
  check_addr mem addr size;
  match ty with
  | Types.I1 | Types.I8 ->
    let b = Char.code (Bytes.get mem.data addr) in
    let v = if b >= 128 then b - 256 else b in
    VInt (Types.wrap ty (Int64.of_int v))
  | Types.I32 -> VInt (Int64.of_int32 (Bytes.get_int32_le mem.data addr))
  | Types.I64 -> VInt (Bytes.get_int64_le mem.data addr)
  | Types.F64 -> VFloat (Int64.float_of_bits (Bytes.get_int64_le mem.data addr))
  | Types.Ptr -> VPtr (Int64.to_int (Bytes.get_int64_le mem.data addr))
  | Types.Void -> trap "load of void"
  | Types.Vec _ -> trap "load_scalar of vector"

let store_scalar (mem : mem) (ty : Types.t) (addr : int) (v : value) =
  let size = Types.size_bytes ty in
  check_addr mem addr size;
  match ty, v with
  | (Types.I1 | Types.I8), VInt x ->
    Bytes.set mem.data addr (Char.chr (Int64.to_int (Int64.logand x 0xFFL)))
  | Types.I32, VInt x -> Bytes.set_int32_le mem.data addr (Int64.to_int32 x)
  | Types.I64, VInt x -> Bytes.set_int64_le mem.data addr x
  | Types.F64, VFloat x -> Bytes.set_int64_le mem.data addr (Int64.bits_of_float x)
  | Types.F64, VInt x -> Bytes.set_int64_le mem.data addr x
  | Types.Ptr, VPtr p -> Bytes.set_int64_le mem.data addr (Int64.of_int p)
  | Types.Ptr, VInt x -> Bytes.set_int64_le mem.data addr x
  | _, VUndef -> () (* undefined store leaves memory as-is *)
  | _ -> trap "type-mismatched store of %s" (Types.to_string ty)

let rec load_value (mem : mem) (ty : Types.t) (addr : int) : value =
  match ty with
  | Types.Vec (t, n) ->
    let es = Types.size_bytes t in
    VVec (Array.init n (fun k -> load_value mem t (addr + (k * es))))
  | _ -> load_scalar mem ty addr

let rec store_value (mem : mem) (ty : Types.t) (addr : int) (v : value) =
  match ty, v with
  | Types.Vec (t, n), VVec vs ->
    if Array.length vs <> n then trap "vector width mismatch on store";
    let es = Types.size_bytes t in
    Array.iteri (fun k e -> store_value mem t (addr + (k * es)) e) vs
  | Types.Vec (t, n), VUndef ->
    ignore (t, n)
  | _ -> store_scalar mem ty addr v

(* --- module loading ------------------------------------------------------ *)

let func_addr_base = 0x4000000

let init_mem (m : Modul.t) : mem =
  let mem =
    { data = Bytes.make 4096 '\000';
      brk = 16; (* address 0 stays invalid *)
      global_addr = Hashtbl.create 16;
      func_addr = Hashtbl.create 16;
      addr_func = Hashtbl.create 16 }
  in
  List.iter
    (fun (g : Global.t) ->
      let addr = alloc mem (max 8 (Global.size_bytes g)) in
      Hashtbl.replace mem.global_addr g.Global.name addr;
      match g.Global.init with
      | None | Some Global.Zeroinit -> ()
      | Some (Global.Ints vs) ->
        Array.iteri
          (fun k v ->
            store_scalar mem g.Global.elt_ty (addr + (k * Types.size_bytes g.Global.elt_ty)) (VInt v))
          vs
      | Some (Global.Floats vs) ->
        Array.iteri
          (fun k v ->
            store_scalar mem g.Global.elt_ty (addr + (k * Types.size_bytes g.Global.elt_ty)) (VFloat v))
          vs
      | Some (Global.Bytes s) ->
        mem_grow mem (addr + String.length s);
        Bytes.blit_string s 0 mem.data addr (String.length s))
    m.Modul.globals;
  List.iteri
    (fun k (f : Func.t) ->
      let addr = func_addr_base + (k * 16) in
      Hashtbl.replace mem.func_addr f.Func.name addr;
      Hashtbl.replace mem.addr_func addr f.Func.name)
    m.Modul.funcs;
  mem

(* --- evaluation ----------------------------------------------------------- *)

type state = {
  m : Modul.t;
  mem : mem;
  mutable cycles : int;
  mutable dyn_insns : int;
  mutable fuel : int;
  out : Buffer.t;
  mutable depth : int;
  (* observation hook: called after every register assignment with the
     enclosing function's name — lets differential tests (e.g. the
     abstract-interpretation soundness property) see concrete values
     without rerunning the program *)
  on_assign : (fname:string -> int -> value -> unit) option;
}

let as_int = function
  | VInt v -> v
  | VPtr p -> Int64.of_int p
  | VUndef -> 0L
  | _ -> trap "expected integer value"

let as_float = function
  | VFloat f -> f
  | VUndef -> 0.0
  | _ -> trap "expected float value"

let as_ptr = function
  | VPtr p -> p
  | VInt v -> Int64.to_int v
  | VUndef -> trap "use of undef pointer"
  | _ -> trap "expected pointer value"

let eval_const (c : Value.const) : value =
  match c with
  | Value.Cint (_, v) -> VInt v
  | Value.Cfloat f -> VFloat f
  | Value.Cnull -> VPtr 0
  | Value.Cundef _ -> VUndef

let scalar_binop (b : Instr.binop) (ty : Types.t) (x : value) (y : value) : value =
  match b with
  | Instr.Fadd | Instr.Fsub | Instr.Fmul | Instr.Fdiv ->
    let r =
      match Fold.eval_fbinop b (as_float x) (as_float y) with
      | Some r -> r
      | None -> trap "bad float op"
    in
    VFloat r
  | _ ->
    (match Fold.eval_binop b (Types.elt_type ty) (as_int x) (as_int y) with
     | Some r -> VInt r
     | None -> trap "division by zero")

let rec eval_binop (b : Instr.binop) (ty : Types.t) (x : value) (y : value) : value =
  match ty with
  | Types.Vec (t, n) ->
    let xe = function VVec a -> a | v -> Array.make n v in
    let xs = xe x and ys = xe y in
    VVec (Array.init n (fun k -> eval_binop b t xs.(k) ys.(k)))
  | _ -> scalar_binop b ty x y

let builtin (st : state) (name : string) (args : value list) : value =
  match name, args with
  | "putchar", [ v ] ->
    Buffer.add_char st.out (Char.chr (Int64.to_int (Int64.logand (as_int v) 0xFFL)));
    VInt (as_int v)
  | "print_i64", [ v ] ->
    Buffer.add_string st.out (Int64.to_string (as_int v));
    Buffer.add_char st.out '\n';
    VInt 0L
  | "print_f64", [ v ] ->
    Buffer.add_string st.out (Printf.sprintf "%.6f\n" (as_float v));
    VInt 0L
  | "abs", [ v ] -> VInt (Int64.abs (as_int v))
  | "labs", [ v ] -> VInt (Int64.abs (as_int v))
  | "sqrt", [ v ] -> VFloat (sqrt (as_float v))
  | "sin", [ v ] -> VFloat (sin (as_float v))
  | "cos", [ v ] -> VFloat (cos (as_float v))
  | "exit", [ v ] -> trap "exit(%Ld)" (as_int v)
  | _ -> trap "call to unknown external @%s/%d" name (List.length args)

let rec call_function (st : state) (f : Func.t) (args : value list) : value =
  if Func.is_declaration f then builtin st f.Func.name args
  else begin
    st.depth <- st.depth + 1;
    if st.depth > 10000 then trap "call stack overflow";
    let frame_brk = st.mem.brk in
    let regs : (int, value) Hashtbl.t = Hashtbl.create 64 in
    (if List.length args <> List.length f.Func.params then
       trap "arity mismatch calling @%s" f.Func.name);
    List.iter2 (fun (p, _) a -> Hashtbl.replace regs p a) f.Func.params args;
    let block_map = Func.block_map f in
    let lookup (v : Value.t) : value =
      match v with
      | Value.Const c -> eval_const c
      | Value.Reg r ->
        (match Hashtbl.find_opt regs r with
         | Some v -> v
         | None -> trap "read of unassigned register %%%d in @%s" r f.Func.name)
      | Value.Global g ->
        (match Hashtbl.find_opt st.mem.global_addr g with
         | Some a -> VPtr a
         | None ->
           (match Hashtbl.find_opt st.mem.func_addr g with
            | Some a -> VPtr a
            | None -> trap "unknown global @%s" g))
    in
    let set r v =
      if r >= 0 then begin
        Hashtbl.replace regs r v;
        match st.on_assign with
        | Some h -> h ~fname:f.Func.name r v
        | None -> ()
      end
    in
    let exec_insn (i : Instr.t) : unit =
      st.dyn_insns <- st.dyn_insns + 1;
      st.cycles <- st.cycles + op_cost i.Instr.op;
      st.fuel <- st.fuel - 1;
      if st.fuel <= 0 then trap "out of fuel";
      match i.Instr.op with
      | Instr.Binop (b, ty, x, y) -> set i.Instr.id (eval_binop b ty (lookup x) (lookup y))
      | Instr.Icmp (p, ty, x, y) ->
        let xv = lookup x and yv = lookup y in
        (match ty with
         | Types.Ptr ->
           set i.Instr.id (VInt (if Fold.eval_icmp p (Int64.of_int (as_ptr xv)) (Int64.of_int (as_ptr yv)) then 1L else 0L))
         | _ ->
           set i.Instr.id
             (VInt (if Fold.eval_icmp p (as_int xv) (as_int yv) then 1L else 0L)))
      | Instr.Fcmp (p, x, y) ->
        set i.Instr.id
          (VInt (if Fold.eval_fcmp p (as_float (lookup x)) (as_float (lookup y)) then 1L else 0L))
      | Instr.Select (_, c, a, b) ->
        set i.Instr.id (if Int64.equal (as_int (lookup c)) 1L then lookup a else lookup b)
      | Instr.Cast (cop, from_ty, to_ty, v) ->
        let vv = lookup v in
        (match cop, to_ty with
         | Instr.Bitcast, Types.Vec (t, n) when not (Types.is_vector from_ty) ->
           (* scalar-to-vector bitcast is the vectorizer's splat *)
           ignore t;
           set i.Instr.id (VVec (Array.make n vv))
         | Instr.Bitcast, Types.F64 when Types.is_integer from_ty ->
           set i.Instr.id (VFloat (Int64.float_of_bits (as_int vv)))
         | Instr.Bitcast, ty when Types.is_integer ty && Types.equal from_ty Types.F64 ->
           set i.Instr.id (VInt (Types.wrap ty (Int64.bits_of_float (as_float vv))))
         | Instr.Sitofp, _ -> set i.Instr.id (VFloat (Int64.to_float (as_int vv)))
         | Instr.Fptosi, ty ->
           let fv = as_float vv in
           if Float.is_nan fv then set i.Instr.id VUndef
           else set i.Instr.id (VInt (Types.wrap ty (Int64.of_float fv)))
         | (Instr.Trunc | Instr.Sext), ty -> set i.Instr.id (VInt (Types.wrap ty (as_int vv)))
         | Instr.Zext, ty ->
           let w = Types.bit_width from_ty in
           let mask =
             if w >= 64 then Int64.minus_one else Int64.sub (Int64.shift_left 1L w) 1L
           in
           set i.Instr.id (VInt (Types.wrap ty (Int64.logand (as_int vv) mask)))
         | Instr.Bitcast, ty ->
           (match vv with
            | VPtr _ when Types.equal ty Types.Ptr -> set i.Instr.id vv
            | _ -> set i.Instr.id vv))
      | Instr.Alloca (ty, n) ->
        let addr = alloc st.mem (Types.size_bytes ty * n) in
        set i.Instr.id (VPtr addr)
      | Instr.Load (ty, p) -> set i.Instr.id (load_value st.mem ty (as_ptr (lookup p)))
      | Instr.Store (ty, v, p) -> store_value st.mem ty (as_ptr (lookup p)) (lookup v)
      | Instr.Gep (ty, b, idx) ->
        let base = as_ptr (lookup b) in
        let off = Int64.to_int (as_int (lookup idx)) * Types.size_bytes (Types.elt_type ty) in
        set i.Instr.id (VPtr (base + off))
      | Instr.Call (_, g, args) ->
        let argv = List.map lookup args in
        (match Modul.find_func st.m g with
         | Some callee -> set i.Instr.id (call_function st callee argv)
         | None -> set i.Instr.id (builtin st g argv))
      | Instr.Callind (_, fv, args) ->
        let addr = as_ptr (lookup fv) in
        (match Hashtbl.find_opt st.mem.addr_func addr with
         | Some g ->
           let callee = Modul.find_func_exn st.m g in
           set i.Instr.id (call_function st callee (List.map lookup args))
         | None -> trap "indirect call to non-function address %d" addr)
      | Instr.Phi _ -> trap "phi executed outside block entry"
      | Instr.Memcpy (d, s, n) ->
        let dst = as_ptr (lookup d) and src = as_ptr (lookup s) in
        let n = Int64.to_int (as_int (lookup n)) in
        if n < 0 then trap "negative memcpy";
        check_addr st.mem dst n;
        check_addr st.mem src n;
        Bytes.blit st.mem.data src st.mem.data dst n;
        st.cycles <- st.cycles + (n / 8)
      | Instr.Expect (_, v, _) -> set i.Instr.id (lookup v)
      | Instr.Intrinsic ("memset", _, [ base; v; count; elt_size ]) ->
        let addr = as_ptr (lookup base) in
        let count = Int64.to_int (as_int (lookup count)) in
        let es = Int64.to_int (as_int (lookup elt_size)) in
        let vv = lookup v in
        if count < 0 || es <= 0 then trap "bad memset";
        check_addr st.mem addr (count * es);
        let ty =
          match es with
          | 1 -> Types.I8 | 4 -> Types.I32 | _ -> Types.I64
        in
        for k = 0 to count - 1 do
          store_scalar st.mem ty (addr + (k * es)) vv
        done;
        st.cycles <- st.cycles + (count * es / 8)
      | Instr.Intrinsic (("assume" | "assume.aligned" | "lifetime.start" | "lifetime.end"), _, _) ->
        ()
      | Instr.Intrinsic (name, _, _) -> trap "unknown intrinsic %s" name
    in
    (* block execution loop *)
    let rec run_block (prev : string option) (label : string) : value =
      let blk =
        match Func.SMap.find_opt label block_map with
        | Some b -> b
        | None -> trap "jump to unknown block %s" label
      in
      let phis, rest = Block.split_phis blk in
      (* phis evaluate simultaneously against the predecessor environment *)
      (match prev, phis with
       | _, [] -> ()
       | None, _ -> trap "phi in entry block"
       | Some pred, phis ->
         let vals =
           List.map
             (fun (i : Instr.t) ->
               match i.Instr.op with
               | Instr.Phi (_, incs) ->
                 (match List.assoc_opt pred incs with
                  | Some v -> (i.Instr.id, lookup v)
                  | None -> trap "phi %%%d missing incoming from %s" i.Instr.id pred)
               | _ -> assert false)
             phis
         in
         List.iter (fun (r, v) -> Hashtbl.replace regs r v) vals;
         st.dyn_insns <- st.dyn_insns + List.length vals);
      List.iter exec_insn rest;
      st.cycles <- st.cycles + term_cost blk.Block.term;
      st.fuel <- st.fuel - 1;
      if st.fuel <= 0 then trap "out of fuel";
      match blk.Block.term with
      | Instr.Ret None -> VUndef
      | Instr.Ret (Some (_, v)) -> lookup v
      | Instr.Br l -> run_block (Some label) l
      | Instr.Cbr (c, t, e) ->
        let taken = Int64.equal (as_int (lookup c)) 1L in
        run_block (Some label) (if taken then t else e)
      | Instr.Switch (_, v, cases, d) ->
        let k = as_int (lookup v) in
        let target = Option.value (List.assoc_opt k cases) ~default:d in
        run_block (Some label) target
      | Instr.Unreachable -> trap "reached unreachable"
    in
    let result = run_block None (Func.entry f).Block.label in
    st.mem.brk <- frame_brk;
    st.depth <- st.depth - 1;
    result
  end

(* --- public API ----------------------------------------------------------- *)

let default_fuel = 200_000_000

let run ?(fuel = default_fuel) ?(entry = "main") ?(args = []) ?on_assign
    (m : Modul.t) : outcome =
  let mem = init_mem m in
  let st =
    { m; mem; cycles = 0; dyn_insns = 0; fuel; out = Buffer.create 64;
      depth = 0; on_assign }
  in
  let f = Modul.find_func_exn m entry in
  let ret = call_function st f args in
  { ret; cycles = st.cycles; dyn_insns = st.dyn_insns; output = Buffer.contents st.out }

(* Convenience for differential tests: observable behaviour of a run. *)
let observe ?(fuel = default_fuel) ?(entry = "main") ?(args = []) (m : Modul.t) :
    (string * string, string) result =
  match run ~fuel ~entry ~args m with
  | { ret; output; _ } ->
    let rs =
      match ret with
      | VInt v -> Int64.to_string v
      | VFloat f -> Printf.sprintf "%.12g" f
      | VPtr p -> Printf.sprintf "ptr:%d" p
      | VVec _ -> "vec"
      | VUndef -> "undef"
    in
    Ok (rs, output)
  | exception Trap msg -> Error msg
