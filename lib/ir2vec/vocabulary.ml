(* IR2Vec-style seed vocabulary.

   IR2Vec learns a seed embedding for each fundamental IR entity — opcode,
   type, operand kind — and composes higher-level representations from
   them. Without the authors' trained vocabulary we use deterministic
   pseudo-random seed vectors (unit-scaled Gaussian, seeded by the entity
   name), which preserves the properties the downstream model relies on:
   fixed dimensionality, distinct directions per entity, and stability
   across runs. *)

open Posetrl_support

let dimension = 300

(* FNV-1a over the entity name gives the per-entity RNG seed. *)
let hash_name (s : string) : int =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int (Int64.logand !h (Int64.of_int max_int))

(* Seed vectors are derived purely from the entity name, so the cache is
   an idempotent memo — made domain-local (one table per domain) so
   parallel evaluation never races a shared hashtable, and every domain
   still computes identical vectors. *)
let cache_key : (string, Vecf.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 128)

let embedding (entity : string) : Vecf.t =
  let cache = Domain.DLS.get cache_key in
  match Hashtbl.find_opt cache entity with
  | Some v -> v
  | None ->
    let rng = Rng.create (hash_name entity) in
    let scale = 1.0 /. sqrt (float_of_int dimension) in
    let v = Vecf.init dimension (fun _ -> Rng.normal rng *. scale) in
    Hashtbl.replace cache entity v;
    v

(* entity name spaces *)
let opcode name = embedding ("opcode:" ^ name)
let ty name = embedding ("type:" ^ name)
let operand_kind name = embedding ("arg:" ^ name)
