(* IR2Vec-style program encoding.

   Follows the published composition: an instruction embedding is a
   weighted sum of its opcode, type and operand-kind seed vectors
   (weights 1 / 0.5 / 0.2 as in IR2Vec); a flow-aware refinement then
   adds a damped contribution from the instructions that define each
   operand (the use-def information IR2Vec derives from reaching
   definitions). Function embeddings are sums of their instruction
   embeddings, and the program embedding is the sum over defined
   functions — 300-dimensional, as used by the paper. *)

open Posetrl_ir
open Posetrl_support

let w_opcode = 1.0
let w_type = 0.5
let w_arg = 0.2
let w_flow = 0.25

let operand_kind (v : Value.t) : string =
  match v with
  | Value.Const (Value.Cint _) -> "const-int"
  | Value.Const (Value.Cfloat _) -> "const-float"
  | Value.Const Value.Cnull -> "const-null"
  | Value.Const (Value.Cundef _) -> "undef"
  | Value.Reg _ -> "variable"
  | Value.Global _ -> "global"

let base_insn_embedding (op : Instr.op) : Vecf.t =
  let acc = Vecf.create Vocabulary.dimension in
  Vecf.axpy ~k:w_opcode acc (Vocabulary.opcode (Instr.opcode_name op));
  let ty = Instr.result_ty op in
  Vecf.axpy ~k:w_type acc (Vocabulary.ty (Types.to_string ty));
  List.iter
    (fun v -> Vecf.axpy ~k:w_arg acc (Vocabulary.operand_kind (operand_kind v)))
    (Instr.operands op);
  acc

let base_term_embedding (t : Instr.term) : Vecf.t =
  let acc = Vecf.create Vocabulary.dimension in
  Vecf.axpy ~k:w_opcode acc (Vocabulary.opcode (Instr.term_name t));
  List.iter
    (fun v -> Vecf.axpy ~k:w_arg acc (Vocabulary.operand_kind (operand_kind v)))
    (Instr.term_operands t);
  acc

(* Function-level embedding with one round of use-def flow refinement. *)
let embed_func (f : Func.t) : Vecf.t =
  if Func.is_declaration f then Vecf.create Vocabulary.dimension
  else begin
    (* base embeddings per defining register *)
    let base : (int, Vecf.t) Hashtbl.t = Hashtbl.create 64 in
    Func.iter_insns
      (fun _ i ->
        if i.Instr.id >= 0 then
          Hashtbl.replace base i.Instr.id (base_insn_embedding i.Instr.op))
      f;
    let acc = Vecf.create Vocabulary.dimension in
    let add_refined (op : Instr.op) (self : Vecf.t) =
      let v = Vecf.copy self in
      List.iter
        (fun operand ->
          match operand with
          | Value.Reg r ->
            (match Hashtbl.find_opt base r with
             | Some def -> Vecf.axpy ~k:w_flow v def
             | None -> ())
          | _ -> ())
        (Instr.operands op);
      Vecf.add_inplace acc v
    in
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            let self =
              if i.Instr.id >= 0 then Hashtbl.find base i.Instr.id
              else base_insn_embedding i.Instr.op
            in
            add_refined i.Instr.op self)
          b.Block.insns;
        (* terminators contribute too; flow refinement over their uses *)
        let tv = base_term_embedding b.Block.term in
        List.iter
          (fun operand ->
            match operand with
            | Value.Reg r ->
              (match Hashtbl.find_opt base r with
               | Some def -> Vecf.axpy ~k:w_flow tv def
               | None -> ())
            | _ -> ())
          (Instr.term_operands b.Block.term);
        Vecf.add_inplace acc tv)
      f.Func.blocks;
    acc
  end

let embed_program_raw (m : Modul.t) : Vecf.t =
  let acc = Vecf.create Vocabulary.dimension in
  List.iter
    (fun f -> if not (Func.is_declaration f) then Vecf.add_inplace acc (embed_func f))
    m.Modul.funcs;
  acc

module Obs = Posetrl_obs

let m_embeds = Obs.Metrics.counter "posetrl.ir2vec.embeds"

let embed_program (m : Modul.t) : Vecf.t =
  Obs.Metrics.inc m_embeds;
  Obs.Span.with_ "posetrl.ir2vec.embed" (fun _ -> embed_program_raw m)

(* Bounded variant used as the RL state: direction preserved, magnitude
   squashed into the unit ball so network inputs stay well-scaled across
   programs of very different sizes. *)
let embed_program_state (m : Modul.t) : Vecf.t =
  let e = embed_program m in
  let n = Vecf.norm2 e in
  if n < 1e-9 then e else Vecf.scale (1.0 /. (1.0 +. n)) e
