(* Dead-code elimination family.

   -adce: aggressive DCE — assume everything dead, mark live from roots
   (side-effecting instructions, terminators, returns) through operand
   chains; unreferenced pure/load/phi instructions disappear even across
   cycles of mutually-referencing dead phis.

   -bdce: bit-tracking DCE — computes demanded bits per register; an
   instruction none of whose result bits are demanded is deleted, and
   masking ops whose mask covers all demanded bits simplify away. *)

open Posetrl_ir
module ISet = Set.Make (Int)
module Usedef = Posetrl_analysis.Usedef

(* --- adce ---------------------------------------------------------------- *)

(* The mark phase (roots + demand propagation) lives in
   [Posetrl_analysis.Usedef.demand_closure], shared with the lint
   dead-code report; this sweep keeps exactly what it demands. *)
let adce_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let live = Usedef.demand_closure f in
  let keep (i : Instr.t) =
    if i.Instr.id < 0 then true (* side-effecting, kept above as root *)
    else Hashtbl.mem live i.Instr.id || Instr.has_side_effects i.Instr.op
  in
  Func.map_blocks (Block.filter_insns keep) f

let adce_pass =
  Pass.function_pass "adce" ~description:"aggressive dead-code elimination"
    adce_func

(* --- bdce ---------------------------------------------------------------- *)

(* Demanded-bit masks per register; a simple one-pass backward analysis
   good enough to kill masked-out computation chains. *)
let bdce_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let demanded : (int, int64) Hashtbl.t = Hashtbl.create 64 in
  let demand v mask =
    match v with
    | Value.Reg r ->
      let cur = Option.value (Hashtbl.find_opt demanded r) ~default:0L in
      Hashtbl.replace demanded r (Int64.logor cur mask)
    | _ -> ()
  in
  let full = Int64.minus_one in
  let ty_mask ty =
    let w = Types.bit_width ty in
    if w >= 64 then full else Int64.sub (Int64.shift_left 1L w) 1L
  in
  (* roots demand all bits *)
  List.iter
    (fun (b : Block.t) ->
      List.iter (fun v -> demand v full) (Instr.term_operands b.Block.term);
      List.iter
        (fun (i : Instr.t) ->
          if Instr.has_side_effects i.Instr.op || not (Instr.is_pure i.Instr.op) then
            List.iter (fun v -> demand v full) (Instr.operands i.Instr.op))
        b.Block.insns)
    f.Func.blocks;
  (* propagate demands through use-def chains to a fixed point (demands
     only grow, so this terminates; bail conservatively if it somehow
     fails to converge) *)
  let changed = ref true in
  let rounds = ref 0 in
  let demand_tracked v mask =
    match v with
    | Value.Reg r ->
      let cur = Option.value (Hashtbl.find_opt demanded r) ~default:0L in
      let nv = Int64.logor cur mask in
      if not (Int64.equal cur nv) then begin
        Hashtbl.replace demanded r nv;
        changed := true
      end
    | _ -> ()
  in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            if i.Instr.id >= 0 && Instr.is_pure i.Instr.op then begin
              let out = Option.value (Hashtbl.find_opt demanded i.Instr.id) ~default:0L in
              let demand = demand_tracked in
              match i.Instr.op with
              | Instr.Binop (Instr.And, _, x, Value.Const (Value.Cint (_, mask))) ->
                demand x (Int64.logand out mask)
              | Instr.Binop ((Instr.And | Instr.Or | Instr.Xor), _, x, y) ->
                demand x out; demand y out
              | Instr.Binop (Instr.Shl, _, x, Value.Const (Value.Cint (_, s))) ->
                demand x (Int64.shift_right_logical out (Int64.to_int (Int64.logand s 63L)))
              | Instr.Binop (Instr.Lshr, _, x, Value.Const (Value.Cint (_, s))) ->
                demand x (Int64.shift_left out (Int64.to_int (Int64.logand s 63L)))
              | Instr.Cast (Instr.Trunc, _from, to_ty, x) ->
                demand x (Int64.logand out (ty_mask to_ty))
              | op ->
                (* conservatively demand everything used *)
                List.iter (fun v -> demand v full) (Instr.operands op)
            end)
          (List.rev b.Block.insns))
      f.Func.blocks
  done;
  if !changed then f (* did not converge within the bound: change nothing *)
  else begin
  (* a register none of whose result bits are demanded can be any value;
     delete its definition and substitute its remaining uses (inside other
     zero-demand chains or masked operands) with zero *)
  let dead_ty : (int, Types.t) Hashtbl.t = Hashtbl.create 8 in
  Func.iter_insns
    (fun _ i ->
      if i.Instr.id >= 0 && Instr.is_pure i.Instr.op then begin
        let out = Option.value (Hashtbl.find_opt demanded i.Instr.id) ~default:0L in
        if Int64.equal out 0L then
          Hashtbl.replace dead_ty i.Instr.id (Instr.result_ty i.Instr.op)
      end)
    f;
  if Hashtbl.length dead_ty = 0 then f
  else begin
    let f =
      Func.map_blocks
        (Block.filter_insns (fun i -> not (Hashtbl.mem dead_ty i.Instr.id)))
        f
    in
    let subst v =
      match v with
      | Value.Reg r ->
        (match Hashtbl.find_opt dead_ty r with
         | Some ty when Types.is_integer ty -> Value.cint ty 0L
         | Some Types.F64 -> Value.cfloat 0.0
         | Some _ -> Value.cundef Types.I64
         | None -> v)
      | _ -> v
    in
    Func.map_operands subst f |> Utils.trivial_dce
  end
  end

let bdce_pass =
  Pass.function_pass "bdce" ~description:"bit-tracking dead-code elimination"
    bdce_func
