(* A deliberately miscompiling pass, NOT in the registry.

   Flips the first interesting integer add in each function to a sub —
   a transform that keeps the module perfectly well-formed (the
   [Structural] and [Ssa] sanitizer tiers accept it) while changing
   behaviour, so only the [Equiv] translation-validation tier can catch
   it. Used by `posetrl opt --inject-bug` and the CI seeded-miscompile
   smoke to prove that tier actually bites. *)

open Posetrl_ir

let is_zero = function
  | Value.Const (Value.Cint (_, k)) -> Int64.equal k 0L
  | _ -> false

(* x + 0 and x - 0 agree, so require a second operand that is not a
   literal zero; the flip is then a genuine semantic change whenever the
   result is observable. *)
let flip_first_add (f : Func.t) : Func.t =
  let flipped = ref false in
  Func.map_blocks
    (fun (b : Block.t) ->
      { b with
        Block.insns =
          List.map
            (fun (i : Instr.t) ->
              match i.Instr.op with
              | Instr.Binop (Instr.Add, ty, x, y)
                when (not !flipped) && not (is_zero y) ->
                flipped := true;
                { i with Instr.op = Instr.Binop (Instr.Sub, ty, x, y) }
              | _ -> i)
            b.Block.insns })
    f

let pass =
  Pass.function_pass "sink"
    ~description:"deliberate add->sub miscompile (sanitizer testing only)"
    (fun _cfg f -> flip_first_add f)
