(** Sequencing of passes by name, with optional per-pass structural
    verification ([~verify]) and semantic sanitizing ([~sanitize]): at
    [Structural] or [Ssa] level every pass's output is re-verified, and
    on failure the failing input is delta-minimized and written to
    [~repro_dir] before {!Posetrl_analysis.Sanitize.Failed} is raised. *)

open Posetrl_ir

type stats = {
  pass_name : string;
  insns_before : int;
  insns_after : int;
  seconds : float;
}

val run_pass :
  ?verify:bool ->
  ?sanitize:Posetrl_analysis.Sanitize.level ->
  ?repro_dir:string ->
  Pass.t -> Config.t -> Modul.t -> Modul.t
(** Run a single (possibly unregistered) pass through the production
    verify/sanitize path. Tests use this to prove the sanitizer catches
    a deliberately miscompiling pass. *)

val run_names :
  ?verify:bool ->
  ?sanitize:Posetrl_analysis.Sanitize.level ->
  ?repro_dir:string ->
  ?collect:bool ->
  Config.t -> string list -> Modul.t -> Modul.t * stats list
(** Run the named passes in order; with [~collect:true] per-pass stats
    are gathered. Unknown names raise [Invalid_argument]. *)

val run :
  ?verify:bool ->
  ?sanitize:Posetrl_analysis.Sanitize.level ->
  ?repro_dir:string ->
  Config.t -> string list -> Modul.t -> Modul.t

val run_level :
  ?verify:bool ->
  ?sanitize:Posetrl_analysis.Sanitize.level ->
  ?repro_dir:string ->
  Pipelines.level -> Modul.t -> Modul.t
(** Run a standard -O level pipeline with its matching config. *)
