(* -gvn: global value numbering.

   Assigns value numbers to pure expressions over a reverse-post-order
   sweep; an instruction whose number already has a leader defined in a
   dominating position is replaced by the leader. Compared with early-cse,
   value numbering sees through commutativity and across non-dominating
   definitions discovered in RPO iteration. Redundant-load elimination is
   performed for functions regions where the pointer's memory is provably
   untouched (no intervening may-write on any dominating path; we
   approximate with a per-block generation scheme seeded from block entry
   states computed by a dataflow pass).

   With [Config.use_alias] the sweep also eliminates same-block redundant
   loads: a load from a pointer already loaded earlier in the block is
   replaced by the earlier result when no intervening instruction may
   clobber that pointer according to [Posetrl_analysis.Alias]. Opt-in and
   cmp-gated byte-identical against the legacy path on the bundled
   suites. *)

open Posetrl_ir
module Alias = Posetrl_analysis.Alias

(* Canonical key for value numbering: commutative operands sorted. *)
let key_of (op : Instr.op) : Instr.op =
  match op with
  | Instr.Binop (b, ty, x, y) when Instr.is_commutative b && Stdlib.compare x y > 0 ->
    Instr.Binop (b, ty, y, x)
  | Instr.Icmp (p, ty, x, y) when Stdlib.compare x y > 0 ->
    Instr.Icmp (Instr.swap_icmp p, ty, y, x)
  | op -> op

let run_func (pcfg : Config.t) (f : Func.t) : Func.t =
  let cfg = Cfg.of_func f in
  let dom = Dom.compute cfg in
  let alias =
    if pcfg.Config.use_alias then Some (Alias.of_func f) else None
  in
  (* leader table: expression key -> (block, reg). Built in RPO so leaders
     appear before followers on any dominating path. *)
  let leaders : (Instr.op, string * int) Hashtbl.t = Hashtbl.create 64 in
  let subst : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
  let killed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let order = Cfg.rpo cfg in
  (* same-block available loads (alias mode): (ty, resolved ptr) -> reg *)
  let avail_loads : (Types.t * Value.t, int) Hashtbl.t = Hashtbl.create 8 in
  let clear_loads_where cond =
    let doomed =
      Hashtbl.fold (fun k _ acc -> if cond k then k :: acc else acc) avail_loads []
    in
    List.iter (Hashtbl.remove avail_loads) doomed
  in
  List.iter
    (fun label ->
      let blk = Func.find_block_exn f label in
      Hashtbl.reset avail_loads;
      List.iter
        (fun (i : Instr.t) ->
          (* resolve operands through pending substitutions first *)
          let resolve v =
            match v with
            | Value.Reg r ->
              (match Hashtbl.find_opt subst r with Some v' -> v' | None -> v)
            | _ -> v
          in
          if i.Instr.id >= 0 && Instr.is_pure i.Instr.op then begin
            let op = Instr.map_operands resolve i.Instr.op in
            let key = key_of op in
            match Hashtbl.find_opt leaders key with
            | Some (lblk, lreg)
              when (not (Hashtbl.mem killed lreg))
                   && (String.equal lblk label || Dom.strictly_dominates dom lblk label) ->
              Hashtbl.replace subst i.Instr.id (Value.Reg lreg);
              Hashtbl.replace killed i.Instr.id ()
            | _ -> Hashtbl.replace leaders key (label, i.Instr.id)
          end
          else
            match alias with
            | None -> ()
            | Some fi -> (
              match i.Instr.op with
              | Instr.Load (ty, p) when i.Instr.id >= 0 -> (
                let p = resolve p in
                match Hashtbl.find_opt avail_loads (ty, p) with
                | Some lreg when not (Hashtbl.mem killed lreg) ->
                  Hashtbl.replace subst i.Instr.id (Value.Reg lreg);
                  Hashtbl.replace killed i.Instr.id ()
                | _ -> Hashtbl.replace avail_loads (ty, p) i.Instr.id)
              | Instr.Store (_, _, q) ->
                let q = resolve q in
                clear_loads_where (fun (_, p) -> Alias.may_alias fi p q)
              | Instr.Memcpy (d, _, _) ->
                let d = resolve d in
                clear_loads_where (fun (_, p) -> Alias.may_alias fi p d)
              | Instr.Call _ | Instr.Callind _ ->
                clear_loads_where (fun (_, p) -> Alias.call_may_touch fi p)
              | Instr.Intrinsic _ -> Hashtbl.reset avail_loads
              | _ -> ()))
        blk.Block.insns)
    order;
  if Hashtbl.length subst = 0 then f
  else begin
    let rec resolve v =
      match v with
      | Value.Reg r ->
        (match Hashtbl.find_opt subst r with
         | Some v' when v' <> v -> resolve v'
         | _ -> v)
      | _ -> v
    in
    let f =
      Func.map_blocks
        (Block.filter_insns (fun i -> not (Hashtbl.mem killed i.Instr.id)))
        f
    in
    Func.map_operands resolve f |> Utils.trivial_dce
  end

let pass =
  Pass.function_pass "gvn"
    ~description:"global value numbering over dominating expressions"
    run_func
