(* Per-pipeline tuning knobs.

   LLVM's optimization levels run largely the same passes with different
   parameters; the O2/O3 vs Os/Oz runtime-vs-size trade-off comes mostly
   from these thresholds. The same mechanism gives our pipelines their
   Fig-1 behaviour (O3 faster but bigger, Oz smaller but slower). *)

type t = {
  size_level : int;          (* 0 = speed, 1 = -Os, 2 = -Oz *)
  opt_level : int;           (* 0..3 *)
  inline_threshold : int;    (* max callee cost eligible for inlining *)
  unroll_count : int;        (* full-unroll trip-count limit *)
  unroll_partial : int;      (* partial unroll factor; 1 disables *)
  unroll_size_limit : int;   (* max body size (insns) eligible for unrolling *)
  vectorize : bool;
  vector_width : int;
  speculate_max_insns : int; (* speculative-execution hoisting budget *)
  jump_threading_max : int;  (* max block size to duplicate when threading *)
  use_alias : bool;          (* consult Posetrl_analysis.Alias in dse/licm/gvn
                                (opt-in; must stay byte-identical to legacy) *)
}

let o0 = {
  size_level = 0; opt_level = 0;
  inline_threshold = 0;
  unroll_count = 0; unroll_partial = 1; unroll_size_limit = 0;
  vectorize = false; vector_width = 1;
  speculate_max_insns = 0; jump_threading_max = 0;
  use_alias = false;
}

let o1 = {
  size_level = 0; opt_level = 1;
  inline_threshold = 25;
  unroll_count = 4; unroll_partial = 1; unroll_size_limit = 24;
  vectorize = false; vector_width = 1;
  speculate_max_insns = 2; jump_threading_max = 4;
  use_alias = false;
}

let o2 = {
  size_level = 0; opt_level = 2;
  inline_threshold = 225;
  unroll_count = 16; unroll_partial = 4; unroll_size_limit = 120;
  vectorize = true; vector_width = 4;
  speculate_max_insns = 4; jump_threading_max = 8;
  use_alias = false;
}

let o3 = {
  o2 with
  opt_level = 3;
  inline_threshold = 275;
  unroll_count = 32; unroll_partial = 8; unroll_size_limit = 200;
}

let os = {
  o2 with
  size_level = 1;
  inline_threshold = 50;
  unroll_count = 4; unroll_partial = 1; unroll_size_limit = 32;
  vectorize = true;
}

let oz = {
  o2 with
  size_level = 2;
  inline_threshold = 5;
  unroll_count = 2; unroll_partial = 1; unroll_size_limit = 12;
  vectorize = false;
}

let default = oz

let pp ppf c =
  Fmt.pf ppf "{size=%d opt=%d inline<=%d unroll<=%d vec=%b}" c.size_level
    c.opt_level c.inline_threshold c.unroll_count c.vectorize
