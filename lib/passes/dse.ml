(* -dse: dead-store elimination.

   Removes a store when the same pointer is overwritten by a later store
   in the same block with no intervening read or escape, and removes
   stores to non-escaping allocas that are never loaded afterwards
   anywhere in the function.

   Two interchangeable fact providers:
     - legacy ([Effects]): syntactic escape/read-root scans, any
       load/call clears the same-block overwrite window;
     - alias-aware ([Config.use_alias]): points-to facts from
       [Posetrl_analysis.Alias] decide which reads can actually observe
       a pending store. The opt-in path must stay byte-identical to
       legacy on the bundled suites (cmp-gated in the test suite). *)

open Posetrl_ir
module ISet = Set.Make (Int)
module Effects = Posetrl_analysis.Effects
module Alias = Posetrl_analysis.Alias

(* The escape classification ([Effects.private_allocas]), the read-root
   scan ([Effects.read_roots]) and the same-block overwrite scan
   ([Effects.overwritten_store_indices]) are shared with the lint
   dead-store report; this pass only does the deleting. *)
let run_func_legacy (f : Func.t) : Func.t =
  let priv = Effects.private_allocas f in
  (* does any load from [r] (directly, geps excluded since gep of private
     alloca with distinct indices is separate, we stay conservative and
     treat any gep on it as a load barrier) exist after? We precompute
     whether each private alloca is loaded at all. *)
  let loaded, gep_based = Effects.read_roots f in
  let never_read r =
    ISet.mem r priv && (not (ISet.mem r loaded)) && not (ISet.mem r gep_based)
  in
  (* same-block overwrite: scan forward remembering the last store per
     pointer; a read/call/memcpy clears the pending map *)
  let rewrite_block (b : Block.t) =
    let dead = Effects.overwritten_store_indices b in
    let insns =
      List.filteri (fun idx _ -> not (Hashtbl.mem dead idx)) b.Block.insns
    in
    { b with Block.insns }
  in
  let f = Func.map_blocks rewrite_block f in
  (* stores to never-read private allocas are dead *)
  let keep (i : Instr.t) =
    match i.Instr.op with
    | Instr.Store (_, _, Value.Reg r) when never_read r -> false
    | _ -> true
  in
  let f = Func.map_blocks (Block.filter_insns keep) f in
  Utils.trivial_dce f

(* Alias-aware same-block overwrite: a read only clears the pending
   stores it may actually observe, and a call only clears pointers it
   can reach ([Alias.call_may_touch]). *)
let overwritten_alias (fi : Alias.finfo) (b : Block.t) : (int, unit) Hashtbl.t =
  let pending : (Value.t, int) Hashtbl.t = Hashtbl.create 8 in
  let dead : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let clear_where cond =
    let doomed =
      Hashtbl.fold (fun q _ acc -> if cond q then q :: acc else acc) pending []
    in
    List.iter (Hashtbl.remove pending) doomed
  in
  List.iteri
    (fun idx (i : Instr.t) ->
      match i.Instr.op with
      | Instr.Store (_, _, p) ->
        (match Hashtbl.find_opt pending p with
         | Some prev -> Hashtbl.replace dead prev ()
         | None -> ());
        Hashtbl.replace pending p idx
      | Instr.Load (_, p) -> clear_where (fun q -> Alias.may_alias fi p q)
      | Instr.Memcpy (_, s, _) -> clear_where (fun q -> Alias.may_alias fi s q)
      | Instr.Call _ | Instr.Callind _ ->
        clear_where (fun q -> Alias.call_may_touch fi q)
      | _ -> ())
    b.Block.insns;
  dead

let run_func_alias (f : Func.t) : Func.t =
  let fi = Alias.of_func f in
  (* every location the function may read from, plus LUnknown when a
     call could read reachable memory (calls cannot see private
     allocas, which [locs_overlap] already encodes) *)
  let read = ref Alias.LSet.empty in
  let add s = read := Alias.LSet.union s !read in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Load (_, p) -> add (Alias.pts fi p)
          | Instr.Memcpy (_, s, _) -> add (Alias.pts fi s)
          | Instr.Call _ | Instr.Callind _ ->
            read := Alias.LSet.add Alias.LUnknown !read
          | Instr.Intrinsic _ -> read := Alias.LSet.add Alias.LUnknown !read
          | _ -> ())
        b.Block.insns)
    f.Func.blocks;
  let read = !read in
  (* a store is dead function-wide when everything it may write is a
     private alloca no read may observe *)
  let never_read p =
    let s = Alias.pts fi p in
    Alias.all_private fi s
    && Alias.LSet.for_all
         (fun l ->
           not (Alias.LSet.exists (fun l2 -> Alias.locs_overlap fi l l2) read))
         s
  in
  let rewrite_block (b : Block.t) =
    let dead = overwritten_alias fi b in
    let insns =
      List.filteri (fun idx _ -> not (Hashtbl.mem dead idx)) b.Block.insns
    in
    { b with Block.insns }
  in
  let f = Func.map_blocks rewrite_block f in
  let keep (i : Instr.t) =
    match i.Instr.op with
    | Instr.Store (_, _, p) when never_read p -> false
    | _ -> true
  in
  let f = Func.map_blocks (Block.filter_insns keep) f in
  Utils.trivial_dce f

let run_func (cfg : Config.t) (f : Func.t) : Func.t =
  if cfg.Config.use_alias then run_func_alias f else run_func_legacy f

let pass =
  Pass.function_pass "dse" ~description:"dead-store elimination" run_func
