(* -dse: dead-store elimination.

   Removes a store when the same pointer is overwritten by a later store
   in the same block with no intervening read or escape, and removes
   stores to non-escaping allocas that are never loaded afterwards
   anywhere in the function. *)

open Posetrl_ir
module ISet = Set.Make (Int)
module Effects = Posetrl_analysis.Effects

(* The escape classification ([Effects.private_allocas]), the read-root
   scan ([Effects.read_roots]) and the same-block overwrite scan
   ([Effects.overwritten_store_indices]) are shared with the lint
   dead-store report; this pass only does the deleting. *)
let run_func (_cfg : Config.t) (f : Func.t) : Func.t =
  let priv = Effects.private_allocas f in
  (* does any load from [r] (directly, geps excluded since gep of private
     alloca with distinct indices is separate, we stay conservative and
     treat any gep on it as a load barrier) exist after? We precompute
     whether each private alloca is loaded at all. *)
  let loaded, gep_based = Effects.read_roots f in
  let never_read r =
    ISet.mem r priv && (not (ISet.mem r loaded)) && not (ISet.mem r gep_based)
  in
  (* same-block overwrite: scan forward remembering the last store per
     pointer; a read/call/memcpy clears the pending map *)
  let rewrite_block (b : Block.t) =
    let dead = Effects.overwritten_store_indices b in
    let insns =
      List.filteri (fun idx _ -> not (Hashtbl.mem dead idx)) b.Block.insns
    in
    { b with Block.insns }
  in
  let f = Func.map_blocks rewrite_block f in
  (* stores to never-read private allocas are dead *)
  let keep (i : Instr.t) =
    match i.Instr.op with
    | Instr.Store (_, _, Value.Reg r) when never_read r -> false
    | _ -> true
  in
  let f = Func.map_blocks (Block.filter_insns keep) f in
  Utils.trivial_dce f

let pass =
  Pass.function_pass "dse" ~description:"dead-store elimination" run_func
