(* Sequencing of passes by name, with optional per-pass IR verification
   (the test suite's main weapon against miscompiling passes). *)

open Posetrl_ir
module Obs = Posetrl_obs

type stats = {
  pass_name : string;
  insns_before : int;
  insns_after : int;
  seconds : float;
}

let m_pass_runs = Obs.Metrics.counter "posetrl.pass.runs"

(* Run one pass, with a [posetrl.pass.run] span carrying the before/after
   instruction counts when a trace sink is installed. The insn_count
   walks only happen when someone (trace or ~collect) will see them. *)
let run_one ~verify (cfg : Config.t) (name : string) (m : Modul.t) : Modul.t =
  let p = Registry.find_exn name in
  Obs.Metrics.inc m_pass_runs;
  if not (Obs.Span.enabled ()) then Pass.run ~verify p cfg m
  else
    Obs.Span.with_ "posetrl.pass.run"
      ~attrs:[ ("pass", Obs.Event.S name) ]
      (fun sp ->
        let before = Modul.insn_count m in
        let m' = Pass.run ~verify p cfg m in
        let after = Modul.insn_count m' in
        Obs.Span.set_attr sp "insns_before" (Obs.Event.I before);
        Obs.Span.set_attr sp "insns_after" (Obs.Event.I after);
        Obs.Span.set_attr sp "d_insns" (Obs.Event.I (before - after));
        m')

let run_names ?(verify = false) ?(collect = false) (cfg : Config.t)
    (names : string list) (m : Modul.t) : Modul.t * stats list =
  let stats = ref [] in
  let m =
    List.fold_left
      (fun m name ->
        let before = if collect then Modul.insn_count m else 0 in
        let t0 = if collect then Unix.gettimeofday () else 0.0 in
        let m' = run_one ~verify cfg name m in
        if collect then
          stats :=
            { pass_name = name;
              insns_before = before;
              insns_after = Modul.insn_count m';
              seconds = Unix.gettimeofday () -. t0 }
            :: !stats;
        m')
      m names
  in
  (m, List.rev !stats)

let run ?(verify = false) (cfg : Config.t) (names : string list) (m : Modul.t) :
    Modul.t =
  fst (run_names ~verify cfg names m)

(* Run a standard -Olevel pipeline. *)
let run_level ?(verify = false) (level : Pipelines.level) (m : Modul.t) : Modul.t =
  run ~verify (Pipelines.config_of level) (Pipelines.sequence_of level) m
