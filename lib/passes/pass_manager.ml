(* Sequencing of passes by name, with optional per-pass IR verification
   and semantic sanitizing (the test suite's main weapon against
   miscompiling passes).

   [~verify] keeps its historical meaning — the structural check inside
   [Pass.run]. [~sanitize] layers the Posetrl_analysis sanitizer on top:
   after every pass the output is re-verified at the requested level
   (structural, structural + SSA dominance, or — at [equiv] — also
   translation-validated against the pass input); on failure the failing
   input is delta-minimized by re-running just that pass, the repro is
   written to [~repro_dir] (a run ledger's repros/ directory in the
   CLI), and [Posetrl_analysis.Sanitize.Failed] is raised. When the
   sanitizer is on, the inner [Pass.run] verification is skipped — the
   sanitizer subsumes it and owns the failure protocol. *)

open Posetrl_ir
module Obs = Posetrl_obs
module Sanitize = Posetrl_analysis.Sanitize

type stats = {
  pass_name : string;
  insns_before : int;
  insns_after : int;
  seconds : float;
}

let m_pass_runs = Obs.Metrics.counter "posetrl.pass.runs"

(* Run [p] on [m], sanitizing the output when asked. Exposed so tests
   can drive a hand-built (e.g. deliberately broken) pass through the
   exact production sanitize path without registering it. *)
let run_pass ?(verify = false) ?(sanitize = Sanitize.Off) ?repro_dir
    (p : Pass.t) (cfg : Config.t) (m : Modul.t) : Modul.t =
  let verify = verify && sanitize = Sanitize.Off in
  let out = Pass.run ~verify p cfg m in
  let per_function = p.Pass.scope = Pass.Function_scope in
  (match Sanitize.check_transform sanitize ~per_function ~before:m out with
   | [] -> ()
   | errors ->
     Sanitize.fail ~pass:p.Pass.name ~level:sanitize ~per_function ~repro_dir
       ~run_pass:(fun m -> Pass.run p cfg m) ~errors m);
  out

(* Run one named pass, with a [posetrl.pass.run] span carrying the
   before/after instruction counts when a trace sink is installed. The
   insn_count walks only happen when someone (trace or ~collect) will
   see them. *)
let run_one ~verify ~sanitize ~repro_dir (cfg : Config.t) (name : string)
    (m : Modul.t) : Modul.t =
  let p = Registry.find_exn name in
  Obs.Metrics.inc m_pass_runs;
  if not (Obs.Span.enabled ()) then run_pass ~verify ~sanitize ?repro_dir p cfg m
  else
    Obs.Span.with_ "posetrl.pass.run"
      ~attrs:[ ("pass", Obs.Event.S name) ]
      (fun sp ->
        let before = Modul.insn_count m in
        let m' = run_pass ~verify ~sanitize ?repro_dir p cfg m in
        let after = Modul.insn_count m' in
        Obs.Span.set_attr sp "insns_before" (Obs.Event.I before);
        Obs.Span.set_attr sp "insns_after" (Obs.Event.I after);
        Obs.Span.set_attr sp "d_insns" (Obs.Event.I (before - after));
        m')

let run_names ?(verify = false) ?(sanitize = Sanitize.Off) ?repro_dir
    ?(collect = false) (cfg : Config.t) (names : string list) (m : Modul.t) :
    Modul.t * stats list =
  let stats = ref [] in
  let m =
    List.fold_left
      (fun m name ->
        let before = if collect then Modul.insn_count m else 0 in
        let t0 = if collect then Unix.gettimeofday () else 0.0 in
        let m' = run_one ~verify ~sanitize ~repro_dir cfg name m in
        if collect then
          stats :=
            { pass_name = name;
              insns_before = before;
              insns_after = Modul.insn_count m';
              seconds = Unix.gettimeofday () -. t0 }
            :: !stats;
        m')
      m names
  in
  (m, List.rev !stats)

let run ?(verify = false) ?(sanitize = Sanitize.Off) ?repro_dir (cfg : Config.t)
    (names : string list) (m : Modul.t) : Modul.t =
  fst (run_names ~verify ~sanitize ?repro_dir cfg names m)

(* Run a standard -Olevel pipeline. *)
let run_level ?(verify = false) ?(sanitize = Sanitize.Off) ?repro_dir
    (level : Pipelines.level) (m : Modul.t) : Modul.t =
  run ~verify ~sanitize ?repro_dir (Pipelines.config_of level)
    (Pipelines.sequence_of level) m
