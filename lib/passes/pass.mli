(** The pass abstraction: a named module-to-module transformation.

    Names follow LLVM's pass flags (e.g. ["simplifycfg"],
    ["early-cse-memssa"]) because the ODG, the action spaces and the
    experiment tables refer to passes by those names. *)

open Posetrl_ir

type scope = Function_scope | Module_scope
(** What the Equiv sanitizer tier may assume about a pass: a
    [Function_scope] pass transforms each definition independently (its
    functions can be validated one by one), a [Module_scope] pass may
    move behaviour between functions and is judged through the entry
    point only. *)

type t = {
  name : string;
  description : string;
  scope : scope;
  run : Config.t -> Modul.t -> Modul.t;
}

val mk :
  ?scope:scope ->
  string ->
  description:string ->
  (Config.t -> Modul.t -> Modul.t) ->
  t
(** [mk] defaults to [Module_scope] — the conservative choice. *)

val function_pass :
  string -> description:string -> (Config.t -> Func.t -> Func.t) -> t
(** Lift a per-function transform over every function definition. *)

val no_op_pass : string -> description:string -> t
(** A pass with no IR effect (pass-manager barriers, instrumentation
    hooks our programs never request). *)

val run : ?verify:bool -> t -> Config.t -> Modul.t -> Modul.t
(** Run the pass; with [~verify:true] the output is checked by
    {!Verifier} and {!Verifier.Invalid} is raised on malformed IR. *)
