(* The pass abstraction: a named module-to-module transformation.

   Names follow LLVM's pass flags (e.g. "simplifycfg", "early-cse-memssa")
   because the ODG, the action spaces and the experiment tables all refer
   to passes by those names. *)

open Posetrl_ir

(* Scope drives what the Equiv sanitizer tier may assume: a
   [Function_scope] pass transforms each definition independently, so its
   output functions can be validated one by one against their inputs; a
   [Module_scope] pass (inlining, IPO, global DCE) may change individual
   function behaviour while preserving whole-program behaviour, so only
   the entry point is compared. *)
type scope = Function_scope | Module_scope

type t = {
  name : string;
  description : string;
  scope : scope;
  run : Config.t -> Modul.t -> Modul.t;
}

let mk ?(scope = Module_scope) name ~description run =
  { name; description; scope; run }

(* Lift a per-function transform to a module pass over definitions. *)
let function_pass name ~description f =
  mk ~scope:Function_scope name ~description
    (fun cfg m -> Modul.map_defined (f cfg) m)

(* A pass that only has out-of-IR effects in real LLVM (barriers,
   instrumentation bookkeeping); here it is the identity on the IR. *)
let no_op_pass name ~description = mk name ~description (fun _ m -> m)

let run ?(verify = false) (p : t) (cfg : Config.t) (m : Modul.t) : Modul.t =
  let m' = p.run cfg m in
  if verify then begin
    match Verifier.verify_module m' with
    | [] -> ()
    | errs ->
      let msg =
        Printf.sprintf "pass %s produced invalid IR:\n%s" p.name
          (String.concat "\n" (List.map Verifier.error_to_string errs))
      in
      raise (Verifier.Invalid msg)
  end;
  m'
