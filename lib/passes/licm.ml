(* -licm: loop-invariant code motion.

   Hoists pure instructions whose operands are loop-invariant into the
   preheader, and hoists loads when the loop contains no may-write to
   memory. Runs innermost-out so invariants bubble up through nests. *)

open Posetrl_ir
module SSet = Set.Make (String)
module ISet = Set.Make (Int)
module Alias = Posetrl_analysis.Alias

let hoist_one_loop ?(alias : Alias.finfo option) (f : Func.t)
    (loop : Loops.loop) : Func.t * bool =
  match loop.Loops.preheader with
  | None -> (f, false)
  | Some pre ->
    let in_loop b = SSet.mem b loop.Loops.blocks in
    let defined_in_loop =
      List.fold_left
        (fun acc (b : Block.t) ->
          if in_loop b.Block.label then
            List.fold_left
              (fun acc (i : Instr.t) ->
                if i.Instr.id >= 0 then ISet.add i.Instr.id acc else acc)
              acc b.Block.insns
          else acc)
        ISet.empty f.Func.blocks
    in
    let loop_writes_memory =
      List.exists
        (fun (b : Block.t) ->
          in_loop b.Block.label
          && List.exists (fun (i : Instr.t) -> Instr.writes_memory i.Instr.op) b.Block.insns)
        f.Func.blocks
    in
    (* Alias-aware refinement: instead of "any write in the loop", ask
       whether some write in the loop may clobber this load's pointer. *)
    let loop_may_clobber (p : Value.t) =
      match alias with
      | None -> loop_writes_memory
      | Some fi ->
        List.exists
          (fun (b : Block.t) ->
            in_loop b.Block.label
            && List.exists
                 (fun (i : Instr.t) ->
                   match i.Instr.op with
                   | Instr.Store (_, _, q) -> Alias.may_alias fi p q
                   | Instr.Memcpy (d, _, _) -> Alias.may_alias fi p d
                   | Instr.Call _ | Instr.Callind _ ->
                     Alias.call_may_touch fi p
                   | op -> Instr.writes_memory op)
                 b.Block.insns)
          f.Func.blocks
    in
    (* iterate: an instruction becomes invariant once its operands are *)
    let hoisted : Instr.t list ref = ref [] in
    let hoisted_ids = ref ISet.empty in
    let changed = ref true in
    let is_invariant v =
      match v with
      | Value.Reg r -> (not (ISet.mem r defined_in_loop)) || ISet.mem r !hoisted_ids
      | _ -> true
    in
    while !changed do
      changed := false;
      List.iter
        (fun (b : Block.t) ->
          if in_loop b.Block.label then
            List.iter
              (fun (i : Instr.t) ->
                if
                  i.Instr.id >= 0
                  && (not (ISet.mem i.Instr.id !hoisted_ids))
                  && List.for_all is_invariant (Instr.operands i.Instr.op)
                then begin
                  let hoistable =
                    Instr.is_pure i.Instr.op
                    ||
                    match i.Instr.op with
                    | Instr.Load (_, p) -> not (loop_may_clobber p)
                    | _ -> false
                  in
                  (* division can trap; hoisting is safe only when the
                     block executes on every iteration — approximate by
                     only hoisting from the header *)
                  let trap_safe =
                    match i.Instr.op with
                    | Instr.Binop ((Instr.Sdiv | Instr.Udiv | Instr.Srem | Instr.Urem), _, _, d) ->
                      (match d with
                       | Value.Const (Value.Cint (_, k)) -> not (Int64.equal k 0L)
                       | _ -> String.equal b.Block.label loop.Loops.header)
                    | Instr.Load _ -> String.equal b.Block.label loop.Loops.header
                    | _ -> true
                  in
                  if hoistable && trap_safe then begin
                    hoisted := i :: !hoisted;
                    hoisted_ids := ISet.add i.Instr.id !hoisted_ids;
                    changed := true
                  end
                end)
              b.Block.insns)
        f.Func.blocks
    done;
    if !hoisted = [] then (f, false)
    else begin
      let keep (i : Instr.t) = not (ISet.mem i.Instr.id !hoisted_ids) in
      (* order hoisted instructions by dependency: reuse original block
         order, then topological fix by simple iteration *)
      let hoisted = List.rev !hoisted in
      let rec topo_sort pending placed =
        match pending with
        | [] -> List.rev placed
        | _ ->
          let ready, blocked =
            List.partition
              (fun (i : Instr.t) ->
                List.for_all
                  (fun v ->
                    match v with
                    | Value.Reg r ->
                      (not (ISet.mem r !hoisted_ids))
                      || List.exists (fun (p : Instr.t) -> p.Instr.id = r) placed
                    | _ -> true)
                  (Instr.operands i.Instr.op))
              pending
          in
          if ready = [] then List.rev_append placed pending (* cycle safety *)
          else topo_sort blocked (List.rev_append ready placed)
      in
      let hoisted = topo_sort hoisted [] in
      let blocks =
        List.map
          (fun (b : Block.t) ->
            if in_loop b.Block.label then Block.filter_insns keep b
            else if String.equal b.Block.label pre then
              { b with Block.insns = b.Block.insns @ hoisted }
            else b)
          f.Func.blocks
      in
      (Func.with_blocks f blocks, true)
    end

let run_func (cfg : Config.t) (f : Func.t) : Func.t =
  let f = Loop_simplify.loop_simplify_func cfg f in
  let rec go f budget =
    if budget = 0 then f
    else begin
      let li = Loops.compute f in
      (* innermost loops first *)
      let loops = List.sort (fun a b -> compare b.Loops.depth a.Loops.depth) li.Loops.loops in
      let f', changed =
        List.fold_left
          (fun (f, any) loop ->
            let li' = Loops.compute f in
            match
              List.find_opt (fun l -> String.equal l.Loops.header loop.Loops.header) li'.Loops.loops
            with
            | None -> (f, any)
            | Some loop ->
              let alias =
                if cfg.Config.use_alias then Some (Alias.of_func f) else None
              in
              let f', c = hoist_one_loop ?alias f loop in
              (f', any || c))
          (f, false) loops
      in
      if changed then go f' (budget - 1) else f'
    end
  in
  go f 4

let pass =
  Pass.function_pass "licm" ~description:"loop-invariant code motion into preheaders"
    run_func
