(* The optimization engine behind `posetrl serve --opt`: admission
   control (parse + sanitize untrusted IR), the IR-digest result cache,
   and greedy policy rollouts that coalesce concurrent requests into
   batched forward passes.

   Batching is lockstep: every live request's current state embedding
   becomes one row of a (live x state_dim) matrix and a single
   [Mlp.forward_batch] gemm (optionally split over the domain pool)
   scores all of them per episode step. The batched kernels are
   term-order identical to the per-sample forward (DESIGN.md §9), and
   argmax tie-breaking matches [Dqn.greedy_action], so a batched
   rollout is byte-identical to [Inference.predict] — the cache-identity
   qcheck property in test/test_serve.ml pins this. *)

open Posetrl_ir
module C = Posetrl_core
module O = Posetrl_odg
module CG = Posetrl_codegen
module Rl = Posetrl_rl
module A = Posetrl_analysis
module Nn = Posetrl_nn
module Obs = Posetrl_obs
module Vecf = Posetrl_support.Vecf

let m_hits = Obs.Metrics.counter "posetrl.serve.cache_hits_total"
let m_misses = Obs.Metrics.counter "posetrl.serve.cache_misses_total"
let m_cache_bytes = Obs.Metrics.gauge "posetrl.serve.cache_bytes"
let m_cache_entries = Obs.Metrics.gauge "posetrl.serve.cache_entries"

let m_batch_size =
  Obs.Metrics.histogram
    ~buckets:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 |]
    "posetrl.serve.batch_size"

type t = {
  agent : Rl.Dqn.t;
  actions : O.Action_space.t;
  target : CG.Target.t;
  pool : Posetrl_support.Pool.t option;
  max_steps : int;
  sanitize : A.Sanitize.level;
  cache : Obs.Json.t Cache.t;
}

let create ?(max_steps = C.Environment.default_max_steps)
    ?(cache_bytes = Cache.default_max_bytes)
    ?(sanitize = A.Sanitize.Ssa) ?pool ~(agent : Rl.Dqn.t)
    ~(actions : O.Action_space.t) ~(target : CG.Target.t) () : t =
  { agent;
    actions;
    target;
    pool;
    max_steps;
    sanitize;
    cache = Cache.create ~max_bytes:cache_bytes () }

let cache (t : t) = t.cache

(* --- admission ------------------------------------------------------------- *)

type admitted = { key : string; raw_key : string; m : Modul.t }

let config_salt (t : t) : string =
  String.concat "\x00"
    [ t.target.CG.Target.name;
      string_of_int (O.Action_space.n_actions t.actions);
      string_of_int t.max_steps ]

(* The cache key: digest of the canonically printed module (so
   whitespace variants of the same IR hit the same entry), salted with
   the serving configuration that shapes the answer. The agent itself
   is fixed for the engine's lifetime — the cache never outlives it. *)
let key_of (t : t) (m : Modul.t) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ config_salt t; Printer.module_to_string m ]))

(* Results are also indexed under the digest of the raw request bytes:
   a byte-identical repeat is answered without parsing or sanitizing at
   all (the same bytes already passed admission under this config), so
   the hot path costs a digest and a serialization, not a re-parse. *)
let raw_key_of (t : t) (body : string) : string =
  Digest.to_hex
    (Digest.string (String.concat "\x00" [ config_salt t; "raw"; body ]))

let find_raw (t : t) (body : string) : Obs.Json.t option =
  let rk = raw_key_of t body in
  if Cache.mem t.cache rk then begin
    match Cache.find t.cache rk with
    | Some doc ->
      Obs.Metrics.inc m_hits;
      Some doc
    | None -> None
  end
  else None

let lint_diagnostics (m : Modul.t) : Obs.Json.t =
  A.Lint.to_json ~name:m.Modul.name (A.Lint.lint_module m)

(* Parse + sanitize untrusted input IR; rejects come back as the JSON
   body of a 400, carrying the lint report so the client learns *why*
   its module was refused, not just that it was. *)
let admit (t : t) (body : string) : (admitted, Obs.Json.t) result =
  match Parser.parse_module body with
  | exception Parser.Parse_error msg ->
    Error
      (Obs.Json.Obj
         [ ("error", Obs.Json.Str "parse error");
           ("detail", Obs.Json.Str msg);
           ("diagnostics", Obs.Json.Arr []) ])
  | m ->
    (match A.Sanitize.check_module t.sanitize m with
     | [] -> Ok { key = key_of t m; raw_key = raw_key_of t body; m }
     | errs ->
       Error
         (Obs.Json.Obj
            [ ("error", Obs.Json.Str "rejected by sanitizer");
              ("sanitizer",
               Obs.Json.Arr
                 (List.map
                    (fun e -> Obs.Json.Str (Verifier.error_to_string e))
                    errs));
              ("diagnostics", lint_diagnostics m) ]))

(* --- batched greedy rollout ------------------------------------------------ *)

type slot = {
  env : C.Environment.t;
  mutable state : float array;
  mutable taken : int list; (* reverse order *)
  mutable terminal : bool;
}

(* Roll every module out in lockstep: one [forward_batch] gemm per
   episode step scores all still-live requests at once. Modules finish
   independently (episodes are fixed-length, but a request list mixes
   nothing else up); finished rows simply drop out of the batch. *)
let rollout_batch (t : t) (ms : Modul.t list) : (int list * Modul.t) list =
  match ms with
  | [] -> []
  | _ ->
    Obs.Span.with_ "posetrl.serve.batch"
      ~attrs:[ ("modules", Obs.Event.I (List.length ms)) ]
      (fun _ ->
        let slots =
          Array.of_list
            (List.map
               (fun m ->
                 let env =
                   C.Environment.create ~max_steps:t.max_steps
                     ~sanitize:t.sanitize ~target:t.target ~actions:t.actions ()
                 in
                 let state = C.Environment.reset env m in
                 { env; state; taken = []; terminal = false })
               ms)
        in
        let live () =
          let idx = ref [] in
          Array.iteri
            (fun i s -> if not s.terminal then idx := i :: !idx)
            slots;
          Array.of_list (List.rev !idx)
        in
        let continue_ = ref true in
        while !continue_ do
          let idx = live () in
          if Array.length idx = 0 then continue_ := false
          else begin
            Obs.Metrics.observe m_batch_size (float_of_int (Array.length idx));
            let x =
              Nn.Matrix.of_rows (Array.map (fun i -> slots.(i).state) idx)
            in
            let q =
              Nn.Mlp.forward_batch ?pool:t.pool t.agent.Rl.Dqn.online x
            in
            Array.iteri
              (fun k i ->
                let s = slots.(i) in
                let a = Vecf.argmax (Nn.Matrix.row q k) in
                s.taken <- a :: s.taken;
                let res = C.Environment.step s.env a in
                s.state <- res.C.Environment.state;
                s.terminal <- res.C.Environment.terminal)
              idx
          end
        done;
        Array.to_list
          (Array.map
             (fun s -> (List.rev s.taken, C.Environment.current_module s.env))
             slots))

(* --- result documents ------------------------------------------------------ *)

let measure_json (t : t) (m : Modul.t) : Obs.Json.t =
  Obs.Json.Obj
    [ ("size_b", Obs.Json.Int (CG.Objfile.size t.target m));
      ("text_b", Obs.Json.Int (CG.Objfile.text_size t.target m));
      ("throughput", Obs.Json.Float (Posetrl_mca.Mca.throughput t.target m)) ]

let pct num den = if den = 0.0 then 0.0 else 100.0 *. num /. den

let result_json (t : t) ~(input : Modul.t) ~(schedule : int list)
    ~(optimized : Modul.t) : Obs.Json.t =
  let isize = float_of_int (CG.Objfile.size t.target input) in
  let osize = float_of_int (CG.Objfile.size t.target optimized) in
  let ithru = Posetrl_mca.Mca.throughput t.target input in
  let othru = Posetrl_mca.Mca.throughput t.target optimized in
  Obs.Json.Obj
    [ ("kind", Obs.Json.Str "optimize-result");
      ("module", Obs.Json.Str input.Modul.name);
      ("schedule", Obs.Json.Arr (List.map (fun a -> Obs.Json.Int a) schedule));
      ("passes",
       Obs.Json.Arr
         (List.concat_map
            (fun a ->
              List.map
                (fun p -> Obs.Json.Str p)
                (O.Action_space.action t.actions a))
            schedule));
      ("input", measure_json t input);
      ("optimized", measure_json t optimized);
      ("deltas",
       Obs.Json.Obj
         [ ("size_reduction_pct", Obs.Json.Float (pct (isize -. osize) isize));
           ("throughput_improvement_pct",
            Obs.Json.Float (pct (othru -. ithru) ithru)) ]);
      ("optimized_ir", Obs.Json.Str (Printer.module_to_string optimized)) ]

(* --- the cached entry point ------------------------------------------------ *)

let publish_cache_gauges (t : t) : unit =
  Obs.Metrics.set m_cache_bytes (float_of_int (Cache.total_bytes t.cache));
  Obs.Metrics.set m_cache_entries (float_of_int (Cache.length t.cache))

(* Answer a batch of admitted requests: cache hits are free, the misses
   (deduplicated — a batch can carry the same module twice) share one
   lockstep rollout, and every fresh result is inserted under its key.
   Results come back in request order. *)
let optimize_many (t : t) (adms : admitted list) : Obs.Json.t list =
  let n = List.length adms in
  let results : Obs.Json.t option array = Array.make n None in
  let pending : (string, Modul.t) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iteri
    (fun i adm ->
      match Cache.find t.cache adm.key with
      | Some doc ->
        Obs.Metrics.inc m_hits;
        results.(i) <- Some doc
      | None ->
        Obs.Metrics.inc m_misses;
        if not (Hashtbl.mem pending adm.key) then begin
          Hashtbl.add pending adm.key adm.m;
          order := adm.key :: !order
        end)
    adms;
  let keys = List.rev !order in
  let computed : (string, Obs.Json.t * int) Hashtbl.t = Hashtbl.create 8 in
  (match keys with
   | [] -> ()
   | _ ->
     let outs =
       rollout_batch t (List.map (fun k -> Hashtbl.find pending k) keys)
     in
     List.iter2
       (fun key (schedule, optimized) ->
         let input = Hashtbl.find pending key in
         let doc = result_json t ~input ~schedule ~optimized in
         let bytes =
           String.length (Obs.Json.to_string doc) + String.length key
         in
         Cache.add t.cache ~key ~bytes doc;
         Hashtbl.replace computed key (doc, bytes))
       keys outs);
  let answers =
    List.mapi
      (fun i adm ->
        match results.(i) with
        | Some doc -> doc
        | None ->
          let doc, bytes = Hashtbl.find computed adm.key in
          (* index the fresh result under the raw digest too, so a
             byte-identical repeat skips admission entirely *)
          Cache.add t.cache ~key:adm.raw_key ~bytes doc;
          doc)
      adms
  in
  publish_cache_gauges t;
  answers

let optimize (t : t) (adm : admitted) : Obs.Json.t =
  match optimize_many t [ adm ] with
  | [ doc ] -> doc
  | _ -> assert false
