(** Byte-bounded LRU cache keyed by strings (IR digests in the serve
    daemon). Exact LRU with O(1) find/add/evict; the bound is on the
    {e sum of declared entry bytes}, not the entry count, so a handful
    of huge modules cannot pin unbounded memory. Not domain-safe — the
    serve pump owns it single-threaded by design. *)

type 'a t

val default_max_bytes : int
(** 16 MiB. *)

val create : ?max_bytes:int -> unit -> 'a t

val find : 'a t -> string -> 'a option
(** Lookup; a hit refreshes the entry to most-recently-used and counts
    toward {!hits}, a miss toward {!misses}. *)

val mem : 'a t -> string -> bool
(** Presence test without touching LRU order or hit/miss counters. *)

val add : 'a t -> key:string -> bytes:int -> 'a -> unit
(** Insert (replacing any entry under the same key), then evict
    least-recently-used entries until the byte total fits the bound.
    An entry declared larger than the whole cache is refused outright —
    evicting everything for an entry that still cannot fit is thrash. *)

val length : 'a t -> int
val total_bytes : 'a t -> int
val max_bytes : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int

val keys : 'a t -> string list
(** Keys most-recently-used first (the eviction order reversed). *)
