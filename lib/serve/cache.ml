(* Byte-bounded LRU cache for optimization results.

   Exact LRU via an intrusive doubly-linked list over the hash-table
   entries: find/add/evict are all O(1). The bound is in *bytes* (the
   caller declares each entry's weight — for the serve daemon, the
   serialized response size plus the key), not entry count, so one huge
   module cannot silently pin the memory of a thousand small ones. *)

type 'a node = {
  key : string;
  value : 'a;
  bytes : int;
  mutable prev : 'a node option; (* towards MRU *)
  mutable next : 'a node option; (* towards LRU *)
}

type 'a t = {
  tbl : (string, 'a node) Hashtbl.t;
  max_bytes : int;
  mutable head : 'a node option; (* MRU *)
  mutable tail : 'a node option; (* LRU — evicted first *)
  mutable total : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let default_max_bytes = 16 * 1024 * 1024

let create ?(max_bytes = default_max_bytes) () : 'a t =
  { tbl = Hashtbl.create 64;
    max_bytes = max 0 max_bytes;
    head = None;
    tail = None;
    total = 0;
    hits = 0;
    misses = 0;
    evictions = 0 }

let length (t : 'a t) = Hashtbl.length t.tbl
let total_bytes (t : 'a t) = t.total
let max_bytes (t : 'a t) = t.max_bytes
let hits (t : 'a t) = t.hits
let misses (t : 'a t) = t.misses
let evictions (t : 'a t) = t.evictions

let unlink (t : 'a t) (n : 'a node) : unit =
  (match n.prev with
   | Some p -> p.next <- n.next
   | None -> t.head <- n.next);
  (match n.next with
   | Some s -> s.prev <- n.prev
   | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front (t : 'a t) (n : 'a node) : unit =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let remove_node (t : 'a t) (n : 'a node) : unit =
  unlink t n;
  Hashtbl.remove t.tbl n.key;
  t.total <- t.total - n.bytes

let find (t : 'a t) (key : string) : 'a option =
  match Hashtbl.find_opt t.tbl key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some n ->
    t.hits <- t.hits + 1;
    unlink t n;
    push_front t n;
    Some n.value

let mem (t : 'a t) (key : string) : bool = Hashtbl.mem t.tbl key

let evict_lru (t : 'a t) : unit =
  match t.tail with
  | None -> ()
  | Some n ->
    remove_node t n;
    t.evictions <- t.evictions + 1

let add (t : 'a t) ~(key : string) ~(bytes : int) (value : 'a) : unit =
  let bytes = max 0 bytes in
  (match Hashtbl.find_opt t.tbl key with
   | Some old -> remove_node t old
   | None -> ());
  (* an entry larger than the whole cache would evict everything and
     still not fit — refuse it rather than thrash *)
  if bytes <= t.max_bytes then begin
    let n = { key; value; bytes; prev = None; next = None } in
    Hashtbl.replace t.tbl key n;
    push_front t n;
    t.total <- t.total + bytes;
    while t.total > t.max_bytes do
      evict_lru t
    done
  end

(* MRU-first key listing — the tests assert eviction order through this. *)
let keys (t : 'a t) : string list =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head
