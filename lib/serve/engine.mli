(** The optimization engine behind [posetrl serve --opt]: admission
    control over untrusted IR, the IR-digest LRU result cache, and
    greedy policy rollouts that coalesce concurrent requests into
    [Mlp.forward_batch] gemm calls on the domain pool.

    Determinism: a batched rollout is byte-identical to
    {!Posetrl_core.Inference.predict} on each module separately (the
    batched kernels are term-order identical to the per-sample forward,
    and argmax tie-breaking matches [Dqn.greedy_action]), so serving
    through the cache never changes an answer — only its cost. *)

type t

val create :
  ?max_steps:int ->
  ?cache_bytes:int ->
  ?sanitize:Posetrl_analysis.Sanitize.level ->
  ?pool:Posetrl_support.Pool.t ->
  agent:Posetrl_rl.Dqn.t ->
  actions:Posetrl_odg.Action_space.t ->
  target:Posetrl_codegen.Target.t ->
  unit ->
  t
(** Defaults: 15 episode steps, a 16 MiB cache, [Ssa]-level admission
    sanitizing, no pool (sequential gemms). *)

val cache : t -> Posetrl_obs.Json.t Cache.t

type admitted = { key : string; raw_key : string; m : Posetrl_ir.Modul.t }

val key_of : t -> Posetrl_ir.Modul.t -> string
(** The cache key: hex digest of the canonically printed module salted
    with the serving configuration (target, action space, episode
    length) — whitespace variants of the same IR share an entry. *)

val find_raw : t -> string -> Posetrl_obs.Json.t option
(** Fast-path lookup under the digest of the raw request bytes: a
    byte-identical repeat of an already-answered request returns its
    cached document without parsing or sanitizing (those bytes already
    passed admission under this configuration). [None] falls through
    to {!admit}. *)

val admit : t -> string -> (admitted, Posetrl_obs.Json.t) result
(** Parse and sanitize one MiniIR request body. [Error diag] is the
    ready-to-serialize JSON body of a 400: a parse error, or the
    sanitizer's verdict plus the full lint report ([diagnostics]). *)

val rollout_batch :
  t -> Posetrl_ir.Modul.t list -> (int list * Posetrl_ir.Modul.t) list
(** Lockstep batched greedy rollout: per episode step, one
    [forward_batch] gemm scores every still-live module. Returns each
    module's (schedule, optimized module) in input order. *)

val result_json :
  t ->
  input:Posetrl_ir.Modul.t ->
  schedule:int list ->
  optimized:Posetrl_ir.Modul.t ->
  Posetrl_obs.Json.t
(** The [/optimize] response document: schedule (action indices and
    flattened pass names), input/optimized size + mca-throughput
    measurements, their deltas, and the optimized IR text. *)

val optimize_many : t -> admitted list -> Posetrl_obs.Json.t list
(** Answer a batch of admitted requests in request order: cache hits
    are free, misses are deduplicated and share one lockstep rollout,
    and every fresh result lands in the cache. Updates the
    [posetrl.serve.cache_*] and [posetrl.serve.batch_size] metrics. *)

val optimize : t -> admitted -> Posetrl_obs.Json.t
(** [optimize_many] with a single request. *)
