(** The serve daemon's request loop over {!Posetrl_obs.Httpd}.

    Routes:
    - [POST /optimize] — one MiniIR module as the raw body; answers the
      {!Engine.result_json} document, 400 with lint diagnostics when
      admission rejects it, 429 + [Retry-After] when the inference
      queue is full;
    - [POST /optimize/batch] — a JSON array of MiniIR texts (or
      [{"modules": [...]}]); answers per-item result/rejection
      documents under ["results"];
    - [GET /serve] — the live {!stats_json} document;
    - any other GET — the telemetry handler (metrics, healthz, ...).

    [pump] accepts every pending connection before answering any
    optimization request, so concurrent misses coalesce into one
    batched rollout; cache hits and GETs are answered immediately and
    never occupy queue slots. *)

type t

val default_queue_cap : int
(** 64 queued cache-misses per pump. *)

val create :
  ?backlog:int ->
  ?max_body:int ->
  ?queue_cap:int ->
  ?retry_after_s:int ->
  ?telemetry:Posetrl_obs.Httpd.handler ->
  port:int ->
  engine:Engine.t ->
  unit ->
  t
(** Bind on [127.0.0.1:port] (0 picks a free port). [telemetry]
    defaults to the bare standard route table. @raise Unix.Unix_error
    if the bind fails. *)

val port : t -> int
val pump : t -> unit
val close : t -> unit

val requests : t -> int
(** Total requests answered (all routes, including errors). *)

val optimize_requests : t -> int
(** POST /optimize + /optimize/batch requests answered. *)

val stats_json : t -> Posetrl_obs.Json.t
(** The rolling stats document ([kind = "serve-stats"]): request and
    rejection totals, queue depth/cap, cache hit/miss/byte counters,
    p50/p99 of the last 4096 request latencies. Served on [GET /serve]
    and written to the run ledger's [serve.json] by the daemon. *)
