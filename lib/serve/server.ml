(* The serve daemon's request loop: routes POST /optimize and
   /optimize/batch into the engine, with a bounded per-pump admission
   queue (backpressure = 429 + Retry-After), immediate answers for
   cache hits, and one coalesced batched rollout for everything that
   missed. GET routes fall through to the standard telemetry handler
   (plus /serve, the live stats document the dashboard row reads).

   Single-threaded like the Httpd underneath: [pump] accepts every
   pending connection first, answers the cheap ones (GETs, rejects,
   cache hits), and only then runs inference — so a burst of concurrent
   clients shares one forward_batch per episode step instead of paying
   n sequential rollouts. *)

module Obs = Posetrl_obs
module Httpd = Obs.Httpd

let m_requests_opt =
  Obs.Metrics.counter ~labels:[ ("route", "optimize") ]
    "posetrl.serve.requests_total"

let m_requests_batch =
  Obs.Metrics.counter ~labels:[ ("route", "optimize_batch") ]
    "posetrl.serve.requests_total"

let m_requests_other =
  Obs.Metrics.counter ~labels:[ ("route", "other") ]
    "posetrl.serve.requests_total"

let m_rejected_queue =
  Obs.Metrics.counter ~labels:[ ("reason", "queue_full") ]
    "posetrl.serve.rejected_total"

let m_rejected_admission =
  Obs.Metrics.counter ~labels:[ ("reason", "admission") ]
    "posetrl.serve.rejected_total"

let m_queue_depth = Obs.Metrics.gauge "posetrl.serve.queue_depth"
let m_latency = Obs.Metrics.histogram "posetrl.serve.latency_seconds"

(* one batch item: admitted, or the ready-to-embed rejection document *)
type item = (Engine.admitted, Obs.Json.t) result

type job =
  | Single of Engine.admitted
  | Batch of item list

type pending = { client : Httpd.client; t0 : float; job : job }

type t = {
  httpd : Httpd.t;
  engine : Engine.t;
  telemetry : Httpd.handler;
  queue_cap : int;
  retry_after_s : int;
  mutable requests : int;
  mutable optimize_requests : int;
  mutable rejected : int;
  mutable last_queue_depth : int;
  (* rolling latency window for the p50/p99 the stats document reports;
     the full-fidelity distribution lives in the posetrl.serve.latency
     histogram on /metrics *)
  lat : float array;
  mutable lat_n : int;
}

let default_queue_cap = 64
let lat_window = 4096

let create ?(backlog = 64) ?(max_body = Httpd.default_max_body)
    ?(queue_cap = default_queue_cap) ?(retry_after_s = 1)
    ?(telemetry : Httpd.handler option) ~(port : int) ~(engine : Engine.t) () :
    t =
  let telemetry =
    match telemetry with
    | Some h -> h
    | None ->
      Httpd.telemetry_handler
        ~health:(fun () ->
          Obs.Json.Obj [ ("status", Obs.Json.Str "running") ])
        ()
  in
  (* the daemon never dispatches through a handler — pump owns routing —
     but Httpd.create requires one; anything reaching it is a bug *)
  let httpd =
    Httpd.create ~backlog ~max_body ~port
      ~handler:(fun _ -> Httpd.error_response 500 "unreachable")
      ()
  in
  { httpd;
    engine;
    telemetry;
    queue_cap = max 1 queue_cap;
    retry_after_s = max 1 retry_after_s;
    requests = 0;
    optimize_requests = 0;
    rejected = 0;
    last_queue_depth = 0;
    lat = Array.make lat_window 0.0;
    lat_n = 0 }

let port (t : t) = Httpd.port t.httpd
let close (t : t) = Httpd.close t.httpd
let requests (t : t) = t.requests
let optimize_requests (t : t) = t.optimize_requests

(* --- stats ----------------------------------------------------------------- *)

let record_latency (t : t) (dt : float) : unit =
  t.lat.(t.lat_n mod lat_window) <- dt;
  t.lat_n <- t.lat_n + 1;
  Obs.Metrics.observe m_latency dt

let percentile (sorted : float array) (p : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

let latency_percentiles (t : t) : float * float =
  let n = min t.lat_n lat_window in
  if n = 0 then (0.0, 0.0)
  else begin
    let xs = Array.sub t.lat 0 n in
    Array.sort compare xs;
    (percentile xs 0.50, percentile xs 0.99)
  end

let stats_json (t : t) : Obs.Json.t =
  let cache = Engine.cache t.engine in
  let hits = Cache.hits cache and misses = Cache.misses cache in
  let hit_pct =
    if hits + misses = 0 then 0.0
    else 100.0 *. float_of_int hits /. float_of_int (hits + misses)
  in
  let p50, p99 = latency_percentiles t in
  Obs.Json.Obj
    [ ("kind", Obs.Json.Str "serve-stats");
      ("requests", Obs.Json.Int t.requests);
      ("optimize_requests", Obs.Json.Int t.optimize_requests);
      ("rejected", Obs.Json.Int t.rejected);
      ("queue_depth", Obs.Json.Int t.last_queue_depth);
      ("queue_cap", Obs.Json.Int t.queue_cap);
      ("cache_hits", Obs.Json.Int hits);
      ("cache_misses", Obs.Json.Int misses);
      ("cache_hit_pct", Obs.Json.Float hit_pct);
      ("cache_entries", Obs.Json.Int (Cache.length cache));
      ("cache_bytes", Obs.Json.Int (Cache.total_bytes cache));
      ("cache_evictions", Obs.Json.Int (Cache.evictions cache));
      ("latency_p50_s", Obs.Json.Float p50);
      ("latency_p99_s", Obs.Json.Float p99) ]

(* --- the pump -------------------------------------------------------------- *)

let respond_timed (t : t) (client : Httpd.client) ~(t0 : float)
    ~(route : string) (resp : Httpd.response) : unit =
  Httpd.respond client resp;
  let dt = Obs.Clock.now () -. t0 in
  record_latency t dt;
  Obs.Span.emit
    ~attrs:
      [ ("route", Obs.Event.S route); ("status", Obs.Event.I resp.Httpd.status) ]
    ~name:"posetrl.serve.request" ~t_start:t0 ~dur:dt ()

let too_busy (t : t) : Httpd.response =
  Obs.Metrics.inc m_rejected_queue;
  t.rejected <- t.rejected + 1;
  Httpd.error_response
    ~headers:[ ("Retry-After", string_of_int t.retry_after_s) ]
    429 "optimization queue full, retry later"

(* Parse an /optimize/batch body: a JSON array of MiniIR texts, or an
   object carrying one under ["modules"]. *)
let batch_texts (body : string) : (string list, string) result =
  match Obs.Json.of_string body with
  | exception Obs.Json.Parse_error msg -> Error ("invalid JSON body: " ^ msg)
  | doc ->
    let arr =
      match doc with
      | Obs.Json.Arr _ -> Some doc
      | _ -> Obs.Json.member "modules" doc
    in
    (match arr with
     | Some (Obs.Json.Arr items) ->
       let texts =
         List.filter_map
           (function Obs.Json.Str s -> Some s | _ -> None)
           items
       in
       if List.length texts <> List.length items then
         Error "every batch entry must be a MiniIR text string"
       else Ok texts
     | _ -> Error "expected a JSON array of MiniIR texts (or {\"modules\": [...]})")

let items_of_batch (t : t) (texts : string list) : item list =
  List.map
    (fun text ->
      match Engine.admit t.engine text with
      | Ok adm -> Ok adm
      | Error diag ->
        Obs.Metrics.inc m_rejected_admission;
        t.rejected <- t.rejected + 1;
        Error diag)
    texts

(* misses an item list would add to the inference queue (hits are free) *)
let miss_count (t : t) (items : item list) : int =
  List.length
    (List.filter
       (function
         | Ok (adm : Engine.admitted) ->
           not (Cache.mem (Engine.cache t.engine) adm.Engine.key)
         | Error _ -> false)
       items)

let pump (t : t) : unit =
  let queue : pending list ref = ref [] in
  let queued_misses = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match Httpd.accept t.httpd with
    | None -> continue_ := false
    | Some (client, parsed) ->
      let t0 = Obs.Clock.now () in
      t.requests <- t.requests + 1;
      (match parsed with
       | Error resp ->
         Obs.Metrics.inc m_requests_other;
         respond_timed t client ~t0 ~route:"invalid" resp
       | Ok req when req.Httpd.meth = "GET" ->
         Obs.Metrics.inc m_requests_other;
         let resp =
           if req.Httpd.path = "/serve" then Httpd.json_response (stats_json t)
           else
             try t.telemetry req
             with e -> Httpd.error_response 500 (Printexc.to_string e)
         in
         respond_timed t client ~t0 ~route:"telemetry" resp
       | Ok req when req.Httpd.path = "/optimize" ->
         Obs.Metrics.inc m_requests_opt;
         t.optimize_requests <- t.optimize_requests + 1;
         (match Engine.find_raw t.engine req.Httpd.body with
          | Some doc ->
            (* byte-identical repeat: answered without re-admission *)
            respond_timed t client ~t0 ~route:"optimize"
              (Httpd.json_response doc)
          | None ->
         match Engine.admit t.engine req.Httpd.body with
          | Error diag ->
            Obs.Metrics.inc m_rejected_admission;
            t.rejected <- t.rejected + 1;
            respond_timed t client ~t0 ~route:"optimize"
              (Httpd.json_response ~status:400 diag)
          | Ok adm ->
            if Cache.mem (Engine.cache t.engine) adm.Engine.key then
              (* hit: answer now, never occupies a queue slot *)
              respond_timed t client ~t0 ~route:"optimize"
                (Httpd.json_response (Engine.optimize t.engine adm))
            else if !queued_misses >= t.queue_cap then
              respond_timed t client ~t0 ~route:"optimize" (too_busy t)
            else begin
              incr queued_misses;
              queue := { client; t0; job = Single adm } :: !queue
            end)
       | Ok req when req.Httpd.path = "/optimize/batch" ->
         Obs.Metrics.inc m_requests_batch;
         t.optimize_requests <- t.optimize_requests + 1;
         (match batch_texts req.Httpd.body with
          | Error msg ->
            Obs.Metrics.inc m_rejected_admission;
            t.rejected <- t.rejected + 1;
            respond_timed t client ~t0 ~route:"optimize_batch"
              (Httpd.error_response 400 msg)
          | Ok texts ->
            let items = items_of_batch t texts in
            let misses = miss_count t items in
            if !queued_misses + misses > t.queue_cap then
              respond_timed t client ~t0 ~route:"optimize_batch" (too_busy t)
            else begin
              queued_misses := !queued_misses + misses;
              queue := { client; t0; job = Batch items } :: !queue
            end)
       | Ok req ->
         Obs.Metrics.inc m_requests_other;
         respond_timed t client ~t0 ~route:"other"
           (Httpd.error_response 404
              (Printf.sprintf "no POST route for %s" req.Httpd.path)))
  done;
  let pending = List.rev !queue in
  t.last_queue_depth <- !queued_misses;
  Obs.Metrics.set m_queue_depth (float_of_int !queued_misses);
  if pending <> [] then begin
    (* one coalesced engine call answers every queued request: the
       admitted items of all jobs, flattened in arrival order *)
    let admitted =
      List.concat_map
        (fun p ->
          match p.job with
          | Single adm -> [ adm ]
          | Batch items ->
            List.filter_map (function Ok adm -> Some adm | Error _ -> None) items)
        pending
    in
    match Engine.optimize_many t.engine admitted with
    | exception e ->
      let resp = Httpd.error_response 500 (Printexc.to_string e) in
      List.iter
        (fun p -> respond_timed t p.client ~t0:p.t0 ~route:"optimize" resp)
        pending
    | docs ->
      let rest = ref docs in
      let next () =
        match !rest with
        | d :: tl ->
          rest := tl;
          d
        | [] -> Obs.Json.Null
      in
      List.iter
        (fun p ->
          match p.job with
          | Single _ ->
            respond_timed t p.client ~t0:p.t0 ~route:"optimize"
              (Httpd.json_response (next ()))
          | Batch items ->
            let results =
              List.map
                (function Ok _ -> next () | Error diag -> diag)
                items
            in
            respond_timed t p.client ~t0:p.t0 ~route:"optimize_batch"
              (Httpd.json_response
                 (Obs.Json.Obj
                    [ ("kind", Obs.Json.Str "optimize-batch-result");
                      ("results", Obs.Json.Arr results) ])))
        pending
  end;
  (* depth is a between-pumps gauge: everything queued was answered *)
  Obs.Metrics.set m_queue_depth 0.0
