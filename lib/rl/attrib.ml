(* Streaming per-action reward attribution (the AutoPhase-style "which
   passes carry the reward" analysis, made always-on).

   The trainer feeds every environment step's (action, position, reward,
   r_binsize, r_throughput) into a table of per-action cells; the totals
   are plain float sums over the step stream in program order, so the
   table is byte-deterministic per seed — including under the domain
   pool, which never reorders the step stream (DESIGN.md §9). The same
   arithmetic is exposed as [of_records], a brute-force recompute from
   the run ledger's episode records, which the tests hold exactly equal
   to the streaming table.

   Metric exposure is opt-in per table ([registry]): the trainer's table
   publishes posetrl.attrib.* labeled series; recomputed tables (tests,
   `posetrl explain`) stay silent. *)

module Obs = Posetrl_obs

type cell = {
  mutable count : int;
  mutable total_reward : float;
  mutable total_binsize : float;
  mutable total_throughput : float;
  positions : int array;   (* selections at schedule position p (clamped) *)
}

type t = {
  n_actions : int;
  max_pos : int;
  cells : cell array;
  mutable steps : int;
  metrics : (Obs.Metrics.counter * Obs.Metrics.gauge) array option;
  (* per-action (posetrl.attrib.count, posetrl.attrib.reward_total) *)
}

let fresh_cell max_pos =
  { count = 0;
    total_reward = 0.0;
    total_binsize = 0.0;
    total_throughput = 0.0;
    positions = Array.make max_pos 0 }

let create ?registry ~(n_actions : int) ~(max_pos : int) () : t =
  if n_actions <= 0 then invalid_arg "Attrib.create: n_actions must be positive";
  let max_pos = max 1 max_pos in
  let metrics =
    Option.map
      (fun r ->
        Array.init n_actions (fun i ->
            let labels = [ ("action", string_of_int i) ] in
            ( Obs.Metrics.counter ~r ~labels "posetrl.attrib.count",
              Obs.Metrics.gauge ~r ~labels "posetrl.attrib.reward_total" )))
      registry
  in
  { n_actions;
    max_pos;
    cells = Array.init n_actions (fun _ -> fresh_cell max_pos);
    steps = 0;
    metrics }

let n_actions (t : t) = t.n_actions
let max_pos (t : t) = t.max_pos
let steps (t : t) = t.steps

let observe (t : t) ~(action : int) ~(pos : int) ~(reward : float)
    ~(r_binsize : float) ~(r_throughput : float) : unit =
  if action < 0 || action >= t.n_actions then
    invalid_arg "Attrib.observe: action out of range";
  let c = t.cells.(action) in
  c.count <- c.count + 1;
  c.total_reward <- c.total_reward +. reward;
  c.total_binsize <- c.total_binsize +. r_binsize;
  c.total_throughput <- c.total_throughput +. r_throughput;
  let p = if pos < 0 then 0 else min pos (t.max_pos - 1) in
  c.positions.(p) <- c.positions.(p) + 1;
  t.steps <- t.steps + 1;
  match t.metrics with
  | None -> ()
  | Some handles ->
    let ctr, g = handles.(action) in
    Obs.Metrics.inc ctr;
    Obs.Metrics.set g c.total_reward

let count (t : t) (a : int) = t.cells.(a).count
let total_reward (t : t) (a : int) = t.cells.(a).total_reward
let total_binsize (t : t) (a : int) = t.cells.(a).total_binsize
let total_throughput (t : t) (a : int) = t.cells.(a).total_throughput
let positions (t : t) (a : int) = Array.copy t.cells.(a).positions

let mean_reward (t : t) (a : int) =
  let c = t.cells.(a) in
  if c.count = 0 then 0.0 else c.total_reward /. float_of_int c.count

(* the schedule position this action is most often taken at *)
let top_position (t : t) (a : int) : int option =
  let c = t.cells.(a) in
  if c.count = 0 then None
  else begin
    let best = ref 0 in
    Array.iteri
      (fun p n -> if n > c.positions.(!best) then best := p)
      c.positions;
    Some !best
  end

(* exact structural equality — the determinism/recompute contract is
   float-for-float, not approximate *)
let equal (a : t) (b : t) : bool =
  a.n_actions = b.n_actions && a.max_pos = b.max_pos && a.steps = b.steps
  && Array.for_all2
       (fun (x : cell) (y : cell) ->
         x.count = y.count
         && Float.equal x.total_reward y.total_reward
         && Float.equal x.total_binsize y.total_binsize
         && Float.equal x.total_throughput y.total_throughput
         && x.positions = y.positions)
       a.cells b.cells

(* --- persistence (attrib.json) ------------------------------------------- *)

let to_json ?(labels = fun (_ : int) -> "") (t : t) : Obs.Json.t =
  let open Obs.Json in
  Obj
    [ ("kind", Str "attrib");
      ("n_actions", Int t.n_actions);
      ("max_pos", Int t.max_pos);
      ("steps", Int t.steps);
      ("actions",
       Arr
         (List.init t.n_actions (fun a ->
              let c = t.cells.(a) in
              Obj
                [ ("action", Int a);
                  ("passes", Str (labels a));
                  ("count", Int c.count);
                  ("reward_total", Float c.total_reward);
                  ("reward_mean", Float (mean_reward t a));
                  ("r_binsize_total", Float c.total_binsize);
                  ("r_throughput_total", Float c.total_throughput);
                  ("positions",
                   Arr (Array.to_list (Array.map (fun n -> Int n) c.positions)))
                ]))) ]

(* Robust reader: anything structurally off yields [None], never an
   exception — attrib.json is ledger data and may be torn or from a
   different version. *)
let of_json (doc : Obs.Json.t) : t option =
  let open Obs.Json in
  let int_of = function Int i -> Some i | Float f -> Some (int_of_float f) | _ -> None in
  let float_of = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None in
  let member k j = Obs.Runlog.field k j in
  match
    ( Obs.Runlog.str "kind" doc,
      Option.bind (member "n_actions" doc) int_of,
      Option.bind (member "max_pos" doc) int_of,
      Option.bind (member "steps" doc) int_of,
      member "actions" doc )
  with
  | Some "attrib", Some n_actions, Some max_pos, Some steps, Some (Arr actions)
    when n_actions > 0 && max_pos > 0 && List.length actions = n_actions -> (
    let t = create ~n_actions ~max_pos () in
    t.steps <- steps;
    let ok = ref true in
    List.iter
      (fun entry ->
        match
          ( Option.bind (member "action" entry) int_of,
            Option.bind (member "count" entry) int_of,
            Option.bind (member "reward_total" entry) float_of,
            Option.bind (member "r_binsize_total" entry) float_of,
            Option.bind (member "r_throughput_total" entry) float_of,
            member "positions" entry )
        with
        | Some a, Some count, Some rt, Some rb, Some rth, Some (Arr ps)
          when a >= 0 && a < n_actions && List.length ps = max_pos ->
          let c = t.cells.(a) in
          c.count <- count;
          c.total_reward <- rt;
          c.total_binsize <- rb;
          c.total_throughput <- rth;
          List.iteri
            (fun p v ->
              match int_of v with
              | Some n -> c.positions.(p) <- n
              | None -> ok := false)
            ps
        | _ -> ok := false)
      actions;
    if !ok then Some t else None)
  | _ -> None

(* --- brute-force recompute from the run ledger ---------------------------- *)

(* One episode's step stream out of a progress.jsonl "episode" record:
   the "actions" array zipped with the per-step "steps" reward triples.
   Records from pre-health ledgers have no "steps" field and yield []. *)
let episode_steps (record : Obs.Json.t) : (int * float * float * float) list =
  let open Obs.Json in
  match Obs.Runlog.field "actions" record, Obs.Runlog.field "steps" record with
  | Some (Arr actions), Some (Arr steps)
    when List.length actions = List.length steps ->
    List.map2
      (fun a s ->
        match a with
        | Int action ->
          let f k = Option.value ~default:0.0 (Obs.Runlog.num k s) in
          (action, f "r", f "rb", f "rt")
        | _ -> (-1, 0.0, 0.0, 0.0))
      actions steps
    |> List.filter (fun (a, _, _, _) -> a >= 0)
  | _ -> []

let of_records ~(n_actions : int) ~(max_pos : int)
    (records : Obs.Json.t list) : t =
  let t = create ~n_actions ~max_pos () in
  List.iter
    (fun r ->
      if Obs.Runlog.str "kind" r = Some "episode" then
        List.iteri
          (fun pos (action, reward, r_binsize, r_throughput) ->
            if action >= 0 && action < n_actions then
              observe t ~action ~pos ~reward ~r_binsize ~r_throughput)
          (episode_steps r))
    records;
  t
