(** ε-greedy annealing schedule (paper §V-A: ε linear 1.0 → 0.01 over
    20 000 timesteps).

    Determinism contract: {!value} is a pure function of the schedule
    and the step index — no hidden state, no clock — so a training run
    replays the same ε sequence for the same step stream. *)

type t = {
  start : float;
  stop : float;
  decay_steps : int;
}

val create : ?start:float -> ?stop:float -> ?decay_steps:int -> unit -> t
(** Defaults are the paper's: 1.0 → 0.01 over 20 000 steps. *)

val value : t -> int -> float
(** [value t step] — linear interpolation from [start] at step 0 to
    [stop] at [decay_steps], clamped at [stop] beyond. *)

val paper_default : t
