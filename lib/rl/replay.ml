(* Replay memory: a fixed-capacity ring of transitions with uniform
   sampling (paper §V-A: random batches are sampled from the replay
   memory every µ steps). *)

open Posetrl_support

type transition = {
  state : float array;
  action : int;
  reward : float;
  next_state : float array option; (* [None] marks a terminal step *)
}

type t = {
  capacity : int;
  mutable data : transition array;
  steps : int array;   (* global step each slot was pushed at (TD-age) *)
  mutable size : int;
  mutable next : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Replay.create: capacity must be positive";
  { capacity;
    data = Array.make capacity { state = [||]; action = 0; reward = 0.0; next_state = None };
    steps = Array.make capacity 0;
    size = 0;
    next = 0 }

let size t = t.size
let capacity t = t.capacity

let push ?(step = 0) t tr =
  t.data.(t.next) <- tr;
  t.steps.(t.next) <- step;
  t.next <- (t.next + 1) mod t.capacity;
  if t.size < t.capacity then t.size <- t.size + 1

(* Mean TD-age of the buffered transitions relative to [now] (a global
   step index) — the replay-health vital sign the watchdog reads. A
   healthy saturated ring sits near capacity/2; a buffer that stopped
   refreshing ages without bound. *)
let mean_age ~(now : int) t : float =
  if t.size = 0 then 0.0
  else begin
    let acc = ref 0 in
    for i = 0 to t.size - 1 do
      acc := !acc + (now - t.steps.(i))
    done;
    float_of_int !acc /. float_of_int t.size
  end

let sample (rng : Rng.t) t n : transition array =
  if t.size = 0 then invalid_arg "Replay.sample: empty buffer";
  Array.init n (fun _ -> t.data.(Rng.int rng t.size))
