(* Deep Q-Network agent with the Double-DQN target (paper §II-B).

   Two networks: the online network selects actions and is trained every
   step-batch; the target network scores the action the online network
   picked for the next state — the van Hasselt fix for Q-value
   overestimation. Plain DQN (target network both selects and scores) is
   kept for the ablation bench. *)

open Posetrl_support
open Posetrl_nn
module Obs = Posetrl_obs

let m_forwards = Obs.Metrics.counter "posetrl.dqn.forwards"
let m_batches = Obs.Metrics.counter "posetrl.dqn.train_batches"
let m_syncs = Obs.Metrics.counter "posetrl.dqn.target_syncs"

(* Q-value drift diagnostics, refreshed on every online forward (the
   fold is ~n_actions float ops — noise next to the MLP itself). A
   runaway q_max under a falling loss is the classic overestimation
   signature these exist to surface live (`/metrics`). *)
let m_q_mean = Obs.Metrics.gauge "posetrl.dqn.q_mean"
let m_q_max = Obs.Metrics.gauge "posetrl.dqn.q_max"

type t = {
  online : Mlp.t;
  target : Mlp.t;
  optim : Optim.t;
  gamma : float;
  n_actions : int;
  double : bool;
  pool : Pool.t option;
  (* when set, the batch dimension of the gemm kernels is split across
     the pool's domains; row partitioning keeps the arithmetic
     byte-identical to the serial path *)
  mutable train_steps : int;
}

let create ?(gamma = 0.99) ?(lr = 1e-4) ?(double = true) ?pool (rng : Rng.t)
    ~(state_dim : int) ~(hidden : int list) ~(n_actions : int) : t =
  let dims = (state_dim :: hidden) @ [ n_actions ] in
  let online = Mlp.create rng dims in
  let target = Mlp.create rng dims in
  Mlp.copy_params ~src:online ~dst:target;
  { online;
    target;
    optim = Optim.create ~lr ();
    gamma;
    n_actions;
    double;
    pool;
    train_steps = 0 }

let q_values (t : t) (state : float array) : float array =
  Obs.Metrics.inc m_forwards;
  let q = Mlp.forward t.online state in
  if Array.length q > 0 then begin
    let sum = ref 0.0 and mx = ref neg_infinity in
    Array.iter
      (fun v ->
        sum := !sum +. v;
        if v > !mx then mx := v)
      q;
    Obs.Metrics.set m_q_mean (!sum /. float_of_int (Array.length q));
    Obs.Metrics.set m_q_max !mx
  end;
  q

let greedy_action (t : t) (state : float array) : int =
  Vecf.argmax (q_values t state)

let select_action (t : t) (rng : Rng.t) ~(epsilon : float) (state : float array) : int =
  if Rng.float rng < epsilon then Rng.int rng t.n_actions
  else greedy_action t state

(* TD target for one transition (kept for the per-sample ablation and
   the tests' reference arithmetic). *)
let td_target (t : t) (tr : Replay.transition) : float =
  match tr.Replay.next_state with
  | None -> tr.Replay.reward
  | Some s' ->
    let future =
      if t.double then begin
        (* online net picks a'; target net scores it *)
        let a' = Vecf.argmax (Mlp.forward t.online s') in
        (Mlp.forward t.target s').(a')
      end
      else Vecf.max_elt (Mlp.forward t.target s')
    in
    tr.Replay.reward +. (t.gamma *. future)

(* TD targets for a whole batch: gather the non-terminal next states
   into one matrix and run the target (and, for double DQN, the online)
   network once — two gemm sweeps replace 2n matvec chains. *)
let td_targets (t : t) (batch : Replay.transition array) : float array =
  let targets = Array.map (fun tr -> tr.Replay.reward) batch in
  let live = ref [] in
  Array.iteri
    (fun i tr ->
      match tr.Replay.next_state with
      | Some s' -> live := (i, s') :: !live
      | None -> ())
    batch;
  (match List.rev !live with
   | [] -> ()
   | live ->
     let idx = Array.of_list (List.map fst live) in
     let s' = Matrix.of_rows (Array.of_list (List.map snd live)) in
     let q_tgt = Mlp.forward_batch ?pool:t.pool t.target s' in
     let futures =
       if t.double then begin
         let q_onl = Mlp.forward_batch ?pool:t.pool t.online s' in
         Array.init (Array.length idx) (fun k ->
             let a' = Vecf.argmax (Matrix.row q_onl k) in
             Matrix.get q_tgt k a')
       end
       else
         Array.init (Array.length idx) (fun k -> Vecf.max_elt (Matrix.row q_tgt k))
     in
     Array.iteri
       (fun k i -> targets.(i) <- targets.(i) +. (t.gamma *. futures.(k)))
       idx);
  targets

(* One gradient step over a sampled batch; returns mean Huber loss.
   True minibatch: one batched forward/backward (a handful of gemms)
   instead of n per-sample matvec chains. *)
let train_batch (t : t) (batch : Replay.transition array) : float =
  let n = Array.length batch in
  if n = 0 then 0.0
  else
    Obs.Span.with_ "posetrl.dqn.train_batch"
      ~attrs:[ ("batch", Obs.Event.I n) ]
      (fun sp ->
        Obs.Metrics.inc m_batches;
        Mlp.zero_grad t.online;
        let targets = td_targets t batch in
        let x = Matrix.of_rows (Array.map (fun tr -> tr.Replay.state) batch) in
        let q, caches = Mlp.forward_batch_cached ?pool:t.pool t.online x in
        let total = ref 0.0 in
        let dout = Matrix.create n t.n_actions in
        Array.iteri
          (fun i tr ->
            let a = tr.Replay.action in
            let loss, dpred =
              Loss.huber ~pred:(Matrix.get q i a) ~target:targets.(i) ()
            in
            total := !total +. loss;
            Matrix.set dout i a (dpred /. float_of_int n))
          batch;
        Mlp.backward_batch ?pool:t.pool t.online caches dout;
        Optim.step t.optim t.online;
        t.train_steps <- t.train_steps + 1;
        let mean = !total /. float_of_int n in
        Obs.Span.set_attr sp "loss" (Obs.Event.F mean);
        mean)

(* NaN/Inf scan of the online network's parameters — the watchdog's
   weight-health vital sign. O(params), cheap at tick cadence. *)
let weights_finite (t : t) : bool =
  Array.for_all
    (fun (l : Layer.t) ->
      Array.for_all Float.is_finite l.Layer.w.Matrix.data
      && Array.for_all Float.is_finite l.Layer.b)
    t.online.Mlp.layers

let sync_target (t : t) =
  Obs.Metrics.inc m_syncs;
  Obs.Span.with_ "posetrl.dqn.sync" (fun _ ->
      Mlp.copy_params ~src:t.online ~dst:t.target)

(* --- persistence ---------------------------------------------------------

   Weights serialize to a plain text format so trained models can be
   saved from the CLI and reloaded by the bench. *)

let save_weights (t : t) (path : string) : unit =
  let oc = open_out path in
  let net = t.online in
  Printf.fprintf oc "posetrl-dqn %d\n" (Array.length net.Mlp.dims);
  Array.iter (fun d -> Printf.fprintf oc "%d " d) net.Mlp.dims;
  output_char oc '\n';
  Array.iter
    (fun (l : Layer.t) ->
      Array.iter (fun w -> Printf.fprintf oc "%h " w) l.Layer.w.Matrix.data;
      output_char oc '\n';
      Array.iter (fun b -> Printf.fprintf oc "%h " b) l.Layer.b;
      output_char oc '\n')
    net.Mlp.layers;
  close_out oc

let load_weights (t : t) (path : string) : unit =
  let ic = open_in path in
  let header = input_line ic in
  if not (String.length header > 11 && String.sub header 0 11 = "posetrl-dqn") then
    failwith "Dqn.load_weights: bad header";
  let dims_line = input_line ic in
  let dims =
    String.split_on_char ' ' (String.trim dims_line) |> List.map int_of_string
  in
  if dims <> Array.to_list t.online.Mlp.dims then
    failwith "Dqn.load_weights: architecture mismatch";
  Array.iter
    (fun (l : Layer.t) ->
      let wline = input_line ic in
      let ws = String.split_on_char ' ' (String.trim wline) in
      List.iteri
        (fun i s -> if i < Array.length l.Layer.w.Matrix.data then
            l.Layer.w.Matrix.data.(i) <- float_of_string s)
        ws;
      let bline = input_line ic in
      let bs = String.split_on_char ' ' (String.trim bline) in
      List.iteri
        (fun i s -> if i < Array.length l.Layer.b then l.Layer.b.(i) <- float_of_string s)
        bs)
    t.online.Mlp.layers;
  close_in ic;
  sync_target t
