(** Replay memory: a fixed-capacity ring of transitions with uniform
    sampling (paper §V-A).

    Determinism contract: all randomness comes from the caller's
    explicit {!Posetrl_support.Rng} stream — {!sample} draws exactly
    [n] indices from it whatever the buffer contents, and push order is
    the step-stream order, so replay (and everything trained from it)
    is byte-identical per seed, including under the domain pool. *)

type transition = {
  state : float array;
  action : int;
  reward : float;
  next_state : float array option; (** [None] marks a terminal step *)
}

type t

val create : int -> t
(** @raise Invalid_argument if the capacity is not positive. *)

val size : t -> int
val capacity : t -> int

val push : ?step:int -> t -> transition -> unit
(** Append (overwriting the oldest slot once full). [step] is the
    global step index the transition was collected at — the timestamp
    behind {!mean_age} (defaults to 0 for callers that don't track
    TD-age). *)

val mean_age : now:int -> t -> float
(** Mean TD-age (in steps, relative to [now]) of the buffered
    transitions — the replay-health vital sign the watchdog's
    replay_stale rule reads. A healthy saturated ring sits near
    capacity/2. *)

val sample : Posetrl_support.Rng.t -> t -> int -> transition array
(** [sample rng t n] — [n] uniform draws (with replacement) from the
    occupied slots, consuming exactly [n] ints from [rng].
    @raise Invalid_argument on an empty buffer. *)
