(** Deep Q-Network agent with the Double-DQN target (paper §II-B).

    Determinism contracts this module must keep (DESIGN.md §9):
    - all exploration randomness flows through the caller's explicit
      {!Posetrl_support.Rng}; greedy paths consume none of it;
    - [pool] only changes {e where} the gemm kernels' batch rows are
      computed, never the arithmetic — training is byte-identical for
      any [jobs] setting (row partitioning with fixed accumulation
      order in [Posetrl_nn.Matrix]);
    - [save_weights] prints floats as [%h] (hex), so a save/load round
      trip is bit-exact.

    The record is exposed (not abstract): the trainer snapshots and
    restores [online] via [Mlp.copy_params], and the CI fault injection
    pokes a single weight to exercise the NaN watchdog. *)

open Posetrl_nn

type t = {
  online : Mlp.t;   (** selects actions; trained every step-batch *)
  target : Mlp.t;   (** scores the online pick (van Hasselt fix) *)
  optim : Optim.t;
  gamma : float;
  n_actions : int;
  double : bool;    (** Double DQN (paper) vs vanilla target *)
  pool : Posetrl_support.Pool.t option;
  (** when set, the batch dimension of the gemm kernels is split across
      the pool's domains — byte-identical to the serial path *)
  mutable train_steps : int;
}

val create :
  ?gamma:float -> ?lr:float -> ?double:bool ->
  ?pool:Posetrl_support.Pool.t -> Posetrl_support.Rng.t ->
  state_dim:int -> hidden:int list -> n_actions:int -> t
(** Fresh online/target networks (identical parameters) drawn from the
    given stream. Defaults: γ 0.99, lr 1e-4, double DQN. *)

val q_values : t -> float array -> float array
(** One online forward; refreshes the posetrl.dqn.q_mean/q_max drift
    gauges as a side effect. *)

val greedy_action : t -> float array -> int

val select_action :
  t -> Posetrl_support.Rng.t -> epsilon:float -> float array -> int
(** ε-greedy: consumes one float from the stream, plus one int draw on
    the explore branch — the exact draw pattern seeds replay on. *)

val td_target : t -> Replay.transition -> float
(** Per-sample TD target — the tests' reference arithmetic for
    {!td_targets}. *)

val td_targets : t -> Replay.transition array -> float array
(** Batched TD targets (one target-network gemm sweep; two for double
    DQN); element-for-element equal to mapping {!td_target}. *)

val train_batch : t -> Replay.transition array -> float
(** One gradient step over the batch; returns the mean Huber loss.
    [0.0] on an empty batch. *)

val weights_finite : t -> bool
(** NaN/Inf scan of the online parameters — the watchdog's
    weight-health vital sign. O(params), cheap at tick cadence. *)

val sync_target : t -> unit
(** Copy online parameters into the target network. *)

val save_weights : t -> string -> unit
(** Plain-text weight dump ([%h] floats — bit-exact round trip). *)

val load_weights : t -> string -> unit
(** Load weights saved by {!save_weights} into [online] and sync the
    target.
    @raise Failure on a bad header or architecture mismatch. *)
