(** The paper's two action spaces.

    Each action is a list of pass names applied back-to-back by the
    environment. [manual] is Table II (15 groups); [odg] is Table III
    (34 ODG walks), shipped as canonical data with {!derived} exposing
    the live walk enumeration. *)

type t = {
  name : string;
  actions : string list array;
}

val manual : t
(** Table II: the 15 manually grouped sub-sequences. *)

val odg_table : string list list
(** Table III as printed in the paper. *)

val odg : t
(** Table III as an action space. *)

val derived : ?k:int -> unit -> t
(** The action space produced by {!Walks.derive} on the default graph. *)

val n_actions : t -> int

val action : t -> int -> string list

val coverage_universe :
  t -> Graph.t -> string array * (int * int) array * int array array
(** [(nodes, edges, action_paths)] — the decision-space universe for a
    [Posetrl_obs.Coverage] table, as plain arrays: the graph's nodes in
    canonical (sorted) order followed by any extra passes the action
    space references, the graph's edges as index pairs, and each
    action's pass path as node indices. Deterministic for a given
    (action space, graph) pair. *)

val validate : t -> (unit, string) result
(** [Error names] lists any pass names that do not resolve in the pass
    registry. *)
