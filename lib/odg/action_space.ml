(* The two action spaces of the paper.

   - [manual]: the 15 manually-grouped sub-sequences (Table II), which are
     exactly the groups whose concatenation is the Oz pipeline.
   - [odg]: the 34 ODG-derived sub-sequences (Table III) — kept as
     canonical data, as in the paper, with [Walks.derive] providing the
     derivation algorithm itself (tested for the structural properties
     the paper claims).

   Each action is a list of pass names to run back-to-back. *)

type t = {
  name : string;
  actions : string list array;
}

let manual : t =
  { name = "manual";
    actions = Array.of_list Posetrl_passes.Pipelines.manual_groups }

(* Table III, transcribed. The paper's spelling variants
   ("alignmentfromassumptions") resolve through the registry aliases. *)
let odg_table : string list list =
  [ [ "instcombine"; "barrier"; "elim-avail-extern"; "rpo-functionattrs";
      "globalopt"; "globaldce"; "constmerge" ];
    [ "instcombine"; "barrier"; "elim-avail-extern"; "rpo-functionattrs";
      "globalopt"; "globaldce"; "float2int"; "lower-constant-intrinsics" ];
    [ "instcombine"; "barrier"; "elim-avail-extern"; "rpo-functionattrs";
      "globalopt"; "mem2reg"; "deadargelim" ];
    [ "instcombine"; "jump-threading"; "correlated-propagation"; "dse" ];
    [ "instcombine"; "jump-threading"; "correlated-propagation" ];
    [ "instcombine" ];
    [ "instcombine"; "tailcallelim" ];
    [ "loop-simplify"; "lcssa"; "indvars"; "loop-idiom"; "loop-deletion";
      "loop-unroll" ];
    [ "loop-simplify"; "lcssa"; "indvars"; "loop-idiom"; "loop-deletion";
      "loop-unroll"; "mldst-motion"; "gvn"; "memcpyopt"; "sccp"; "bdce" ];
    [ "loop-simplify"; "lcssa"; "licm"; "adce" ];
    [ "loop-simplify"; "lcssa"; "licm"; "alignment-from-assumptions";
      "strip-dead-prototypes"; "globaldce"; "constmerge" ];
    [ "loop-simplify"; "lcssa"; "licm"; "alignment-from-assumptions";
      "strip-dead-prototypes"; "globaldce"; "float2int";
      "lower-constant-intrinsics" ];
    [ "loop-simplify"; "lcssa"; "licm"; "loop-unswitch" ];
    [ "loop-simplify"; "lcssa"; "loop-rotate"; "licm"; "adce" ];
    [ "loop-simplify"; "lcssa"; "loop-rotate"; "licm";
      "alignment-from-assumptions"; "strip-dead-prototypes"; "globaldce";
      "constmerge" ];
    [ "loop-simplify"; "lcssa"; "loop-rotate"; "licm";
      "alignment-from-assumptions"; "strip-dead-prototypes"; "globaldce";
      "float2int"; "lower-constant-intrinsics" ];
    [ "loop-simplify"; "lcssa"; "loop-rotate"; "licm"; "loop-unswitch" ];
    [ "loop-simplify"; "lcssa"; "loop-rotate"; "loop-distribute";
      "loop-vectorize" ];
    [ "loop-simplify"; "lcssa"; "loop-sink"; "instsimplify"; "div-rem-pairs";
      "simplifycfg" ];
    [ "loop-simplify"; "lcssa"; "loop-unroll" ];
    [ "loop-simplify"; "lcssa"; "loop-unroll"; "mldst-motion"; "gvn";
      "memcpyopt"; "sccp"; "bdce" ];
    [ "loop-simplify"; "loop-load-elim" ];
    [ "simplifycfg" ];
    [ "simplifycfg"; "prune-eh"; "inline"; "functionattrs"; "sroa";
      "early-cse"; "lower-expect"; "forceattrs"; "inferattrs"; "ipsccp";
      "called-value-propagation"; "attributor"; "globalopt"; "globaldce";
      "constmerge"; "barrier" ];
    [ "simplifycfg"; "prune-eh"; "inline"; "functionattrs"; "sroa";
      "early-cse"; "lower-expect"; "forceattrs"; "inferattrs"; "ipsccp";
      "called-value-propagation"; "attributor"; "globalopt"; "globaldce";
      "float2int"; "lower-constant-intrinsics"; "barrier" ];
    [ "simplifycfg"; "prune-eh"; "inline"; "functionattrs"; "sroa";
      "early-cse"; "lower-expect"; "forceattrs"; "inferattrs"; "ipsccp";
      "called-value-propagation"; "attributor"; "globalopt"; "mem2reg";
      "deadargelim"; "barrier" ];
    [ "simplifycfg"; "prune-eh"; "inline"; "functionattrs"; "sroa";
      "early-cse-memssa"; "speculative-execution"; "jump-threading";
      "correlated-propagation"; "dse"; "barrier" ];
    [ "simplifycfg"; "prune-eh"; "inline"; "functionattrs"; "sroa";
      "early-cse-memssa"; "speculative-execution"; "jump-threading";
      "correlated-propagation"; "barrier" ];
    [ "simplifycfg"; "reassociate" ];
    [ "simplifycfg"; "sroa"; "early-cse"; "lower-expect"; "forceattrs";
      "inferattrs"; "ipsccp"; "called-value-propagation"; "attributor";
      "globalopt"; "globaldce"; "constmerge" ];
    [ "simplifycfg"; "sroa"; "early-cse"; "lower-expect"; "forceattrs";
      "inferattrs"; "ipsccp"; "called-value-propagation"; "attributor";
      "globalopt"; "globaldce"; "float2int"; "lower-constant-intrinsics" ];
    [ "simplifycfg"; "sroa"; "early-cse"; "lower-expect"; "forceattrs";
      "inferattrs"; "ipsccp"; "called-value-propagation"; "attributor";
      "globalopt"; "mem2reg"; "deadargelim" ];
    [ "simplifycfg"; "sroa"; "early-cse-memssa"; "speculative-execution";
      "jump-threading"; "correlated-propagation"; "dse" ];
    [ "simplifycfg"; "sroa"; "early-cse-memssa"; "speculative-execution";
      "jump-threading"; "correlated-propagation" ] ]

let odg : t = { name = "odg"; actions = Array.of_list odg_table }

(* Action space derived live from the ODG walk enumeration; the canonical
   [odg] table is what the paper's experiments use. *)
let derived ?(k = 8) () : t =
  { name = Printf.sprintf "odg-derived-k%d" k;
    actions = Array.of_list (Walks.derive ~k (Lazy.force Graph.default)) }

let n_actions (t : t) = Array.length t.actions

let action (t : t) (idx : int) : string list = t.actions.(idx)

(* The decision-space universe a coverage table counts against, as
   plain arrays (the obs layer, which consumes this, does not depend on
   posetrl_odg): graph nodes in their canonical sorted order — so the
   index mapping is stable run to run — followed by any extra passes
   the action space references that the graph lacks, in first-appearance
   order; the graph's edge set as index pairs in SMap/SSet iteration
   (i.e. sorted) order; each action's pass list mapped to node
   indices. *)
let coverage_universe (t : t) (g : Graph.t) :
    string array * (int * int) array * int array array =
  let index = Hashtbl.create 64 in
  let names = ref [] in
  let n = ref 0 in
  let intern name =
    match Hashtbl.find_opt index name with
    | Some i -> i
    | None ->
      let i = !n in
      Hashtbl.add index name i;
      names := name :: !names;
      incr n;
      i
  in
  List.iter (fun name -> ignore (intern name)) g.Graph.nodes;
  Array.iter (List.iter (fun name -> ignore (intern name))) t.actions;
  let edges = ref [] in
  List.iter
    (fun u ->
      Graph.SSet.iter
        (fun v -> edges := (intern u, intern v) :: !edges)
        (Graph.successors g u))
    g.Graph.nodes;
  let paths = Array.map (fun passes -> Array.of_list (List.map intern passes)) t.actions in
  ( Array.of_list (List.rev !names),
    Array.of_list (List.rev !edges),
    paths )

(* Every pass named in an action space must resolve in the registry. *)
let validate (t : t) : (unit, string) result =
  let missing =
    Array.to_list t.actions |> List.concat
    |> List.filter (fun n -> Option.is_none (Posetrl_passes.Registry.find n))
    |> List.sort_uniq String.compare
  in
  if missing = [] then Ok ()
  else Error (String.concat ", " missing)
