(* Dense row-major matrices; just enough linear algebra for the MLPs. *)

type t = {
  rows : int;
  cols : int;
  data : float array; (* length rows*cols, row-major *)
}

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun i -> f (i / cols) (i mod cols)) }

let copy m = { m with data = Array.copy m.data }

let get m i j = m.data.((i * m.cols) + j)

let set m i j v = m.data.((i * m.cols) + j) <- v

let fill_zero m = Array.fill m.data 0 (Array.length m.data) 0.0

(* y = M x *)
let matvec (m : t) (x : float array) : float array =
  if Array.length x <> m.cols then invalid_arg "Matrix.matvec: dimension mismatch";
  let y = Array.make m.rows 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref 0.0 in
    for j = 0 to m.cols - 1 do
      acc := !acc +. (m.data.(base + j) *. x.(j))
    done;
    y.(i) <- !acc
  done;
  y

(* y = Mᵀ x *)
let matvec_t (m : t) (x : float array) : float array =
  if Array.length x <> m.rows then invalid_arg "Matrix.matvec_t: dimension mismatch";
  let y = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let xi = x.(i) in
    if xi <> 0.0 then
      for j = 0 to m.cols - 1 do
        y.(j) <- y.(j) +. (m.data.(base + j) *. xi)
      done
  done;
  y

(* M <- M + k * (a ⊗ b)  (outer product accumulate, used for gradients) *)
let outer_add (m : t) ~(k : float) (a : float array) (b : float array) =
  if Array.length a <> m.rows || Array.length b <> m.cols then
    invalid_arg "Matrix.outer_add: dimension mismatch";
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let ai = k *. a.(i) in
    if ai <> 0.0 then
      for j = 0 to m.cols - 1 do
        m.data.(base + j) <- m.data.(base + j) +. (ai *. b.(j))
      done
  done

(* --- batched kernels (gemm family) ----------------------------------------

   Minibatch training multiplies (batch x dim) activation matrices
   against layer weights; these kernels are the hot path of
   [Dqn.train_batch]. All three stream contiguous rows (the "ikj" /
   dot-product orders that suit row-major data) and tile the inner loop
   in blocks of [tile] columns so a C-row segment and a B-row segment
   stay resident in cache.

   Determinism: every output element accumulates its k-terms in
   ascending-k order no matter the tiling or the row partition, so the
   pool-parallel path below is byte-identical to the serial one — and
   the batched forward/backward are term-order identical to the
   per-sample [matvec]/[outer_add] loop they replace. *)

let tile = 64

let row_slice rows jobs w =
  (* chunk [0, rows) into at most [jobs] contiguous (start, stop) spans *)
  let jobs = max 1 (min jobs rows) in
  let per = (rows + jobs - 1) / jobs in
  List.init jobs (fun k -> (k * per, min rows ((k + 1) * per)))
  |> List.filter (fun (i0, i1) -> i0 < i1)
  |> List.map w

let parallel_rows ?pool rows (body : int -> int -> unit) : unit =
  match pool with
  | Some p when Posetrl_support.Pool.jobs p > 1 && rows >= 2 ->
    ignore
      (Posetrl_support.Pool.map p
         (fun (i0, i1) -> body i0 i1)
         (Array.of_list (row_slice rows (Posetrl_support.Pool.jobs p) Fun.id)))
  | _ -> body 0 rows

(* C = A B *)
let gemm ?pool (a : t) (b : t) : t =
  if a.cols <> b.rows then invalid_arg "Matrix.gemm: dimension mismatch";
  let c = create a.rows b.cols in
  let n = b.cols in
  parallel_rows ?pool a.rows (fun i0 i1 ->
      for i = i0 to i1 - 1 do
        let abase = i * a.cols and cbase = i * n in
        let j0 = ref 0 in
        while !j0 < n do
          let jhi = min n (!j0 + tile) in
          for k = 0 to a.cols - 1 do
            let aik = a.data.(abase + k) in
            if aik <> 0.0 then begin
              let bbase = k * n in
              for j = !j0 to jhi - 1 do
                c.data.(cbase + j) <- c.data.(cbase + j) +. (aik *. b.data.(bbase + j))
              done
            end
          done;
          j0 := jhi
        done
      done);
  c

(* C = A Bᵀ — the minibatch forward ([x · wᵀ]): both operands are read
   row-wise, so each output element is one contiguous dot product. *)
let gemm_nt ?pool (a : t) (b : t) : t =
  if a.cols <> b.cols then invalid_arg "Matrix.gemm_nt: dimension mismatch";
  let c = create a.rows b.rows in
  let kdim = a.cols in
  parallel_rows ?pool a.rows (fun i0 i1 ->
      for i = i0 to i1 - 1 do
        let abase = i * kdim and cbase = i * b.rows in
        for j = 0 to b.rows - 1 do
          let bbase = j * kdim in
          let acc = ref 0.0 in
          for k = 0 to kdim - 1 do
            acc := !acc +. (a.data.(abase + k) *. b.data.(bbase + k))
          done;
          c.data.(cbase + j) <- !acc
        done
      done);
  c

(* C <- C + Aᵀ B — the weight-gradient accumulate ([gw += dpreᵀ · x]).
   Runs serial: gradient matrices are small (out x in) and the k loop
   must stay sample-ascending per element for term-order determinism. *)
let gemm_tn_acc (c : t) (a : t) (b : t) : unit =
  if a.rows <> b.rows || c.rows <> a.cols || c.cols <> b.cols then
    invalid_arg "Matrix.gemm_tn_acc: dimension mismatch";
  let n = b.cols in
  for k = 0 to a.rows - 1 do
    let abase = k * a.cols and bbase = k * n in
    for i = 0 to a.cols - 1 do
      let aki = a.data.(abase + i) in
      if aki <> 0.0 then begin
        let cbase = i * n in
        for j = 0 to n - 1 do
          c.data.(cbase + j) <- c.data.(cbase + j) +. (aki *. b.data.(bbase + j))
        done
      end
    done
  done

(* rows of [m] as freshly allocated arrays / a matrix from row vectors *)
let of_rows (rows : float array array) : t =
  let r = Array.length rows in
  if r = 0 then invalid_arg "Matrix.of_rows: empty";
  let c = Array.length rows.(0) in
  let m = create r c in
  Array.iteri
    (fun i row ->
      if Array.length row <> c then invalid_arg "Matrix.of_rows: ragged rows";
      Array.blit row 0 m.data (i * c) c)
    rows;
  m

let row (m : t) (i : int) : float array = Array.sub m.data (i * m.cols) m.cols

let map_inplace f m =
  for i = 0 to Array.length m.data - 1 do
    m.data.(i) <- f m.data.(i)
  done

let frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)
