(* Multi-layer perceptron: the DQN's Q-function approximator. *)

open Posetrl_support

type t = {
  layers : Layer.t array;
  dims : int array; (* in_dim :: hidden... :: out_dim *)
}

(* [create rng [300;128;64;34]] builds ReLU hidden layers and a linear
   output layer. *)
let create (rng : Rng.t) (dims : int list) : t =
  let dims = Array.of_list dims in
  if Array.length dims < 2 then invalid_arg "Mlp.create: need at least 2 dims";
  let n = Array.length dims - 1 in
  let layers =
    Array.init n (fun k ->
        Layer.create rng ~in_dim:dims.(k) ~out_dim:dims.(k + 1) ~relu:(k < n - 1))
  in
  { layers; dims }

let forward (net : t) (x : float array) : float array =
  Array.fold_left (fun x l -> fst (Layer.forward l x)) x net.layers

type caches = Layer.cache array

let forward_cached (net : t) (x : float array) : float array * caches =
  let caches = Array.make (Array.length net.layers) { Layer.input = x; Layer.pre = x } in
  let out = ref x in
  Array.iteri
    (fun k l ->
      let o, c = Layer.forward l !out in
      caches.(k) <- c;
      out := o)
    net.layers;
  (!out, caches)

(* Backpropagate dL/doutput, accumulating parameter gradients. *)
let backward (net : t) (caches : caches) (dout : float array) : unit =
  let d = ref dout in
  for k = Array.length net.layers - 1 downto 0 do
    d := Layer.backward net.layers.(k) caches.(k) !d
  done

(* --- minibatch path: one gemm per layer over the whole batch ------------- *)

type bcaches = Layer.bcache array

let forward_batch_cached ?pool (net : t) (x : Matrix.t) : Matrix.t * bcaches =
  let n = Array.length net.layers in
  let caches = Array.make n { Layer.binput = x; Layer.bpre = x } in
  let out = ref x in
  Array.iteri
    (fun k l ->
      let o, c = Layer.forward_batch ?pool l !out in
      caches.(k) <- c;
      out := o)
    net.layers;
  (!out, caches)

let forward_batch ?pool (net : t) (x : Matrix.t) : Matrix.t =
  fst (forward_batch_cached ?pool net x)

(* Backpropagate per-row dL/doutput, accumulating parameter gradients
   over the whole batch. *)
let backward_batch ?pool (net : t) (caches : bcaches) (dout : Matrix.t) : unit =
  let d = ref dout in
  for k = Array.length net.layers - 1 downto 0 do
    d := Layer.backward_batch ?pool net.layers.(k) caches.(k) !d
  done

let zero_grad (net : t) = Array.iter Layer.zero_grad net.layers

let copy_params ~(src : t) ~(dst : t) =
  Array.iteri (fun k l -> Layer.copy_params ~src:l ~dst:dst.layers.(k)) src.layers

(* parameter count, for reporting *)
let param_count (net : t) : int =
  Array.fold_left
    (fun acc (l : Layer.t) ->
      acc + Array.length l.Layer.w.Matrix.data + Array.length l.Layer.b)
    0 net.layers
