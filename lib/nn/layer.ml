(* A fully-connected layer with Adam state and optional ReLU. *)

open Posetrl_support

type t = {
  w : Matrix.t;
  b : float array;
  relu : bool;
  (* gradient accumulators *)
  gw : Matrix.t;
  gb : float array;
  (* Adam moments *)
  mw : Matrix.t;
  vw : Matrix.t;
  mb : float array;
  vb : float array;
}

(* He initialization for ReLU layers, Xavier otherwise. *)
let create (rng : Rng.t) ~in_dim ~out_dim ~relu =
  let scale =
    if relu then sqrt (2.0 /. float_of_int in_dim)
    else sqrt (1.0 /. float_of_int in_dim)
  in
  { w = Matrix.init out_dim in_dim (fun _ _ -> Rng.normal rng *. scale);
    b = Array.make out_dim 0.0;
    relu;
    gw = Matrix.create out_dim in_dim;
    gb = Array.make out_dim 0.0;
    mw = Matrix.create out_dim in_dim;
    vw = Matrix.create out_dim in_dim;
    mb = Array.make out_dim 0.0;
    vb = Array.make out_dim 0.0 }

type cache = {
  input : float array;
  pre : float array; (* pre-activation *)
}

let forward (l : t) (x : float array) : float array * cache =
  let pre = Matrix.matvec l.w x in
  Array.iteri (fun i b -> pre.(i) <- pre.(i) +. b) l.b;
  let out = if l.relu then Array.map (fun v -> if v > 0.0 then v else 0.0) pre else Array.copy pre in
  (out, { input = x; pre })

(* --- minibatch path --------------------------------------------------------

   One gemm per layer instead of one matvec per sample: rows are batch
   elements. Term order per output element matches the per-sample loop
   (ascending input index forward, ascending sample index into the
   gradients), so switching batch sizes or enabling the pool never
   changes the arithmetic — see DESIGN.md §9. *)

type bcache = {
  binput : Matrix.t; (* batch x in_dim *)
  bpre : Matrix.t;   (* batch x out_dim, pre-activation *)
}

let forward_batch ?pool (l : t) (x : Matrix.t) : Matrix.t * bcache =
  if x.Matrix.cols <> l.w.Matrix.cols then
    invalid_arg "Layer.forward_batch: dimension mismatch";
  let pre = Matrix.gemm_nt ?pool x l.w in
  let out_dim = l.w.Matrix.rows in
  for i = 0 to pre.Matrix.rows - 1 do
    let base = i * out_dim in
    for j = 0 to out_dim - 1 do
      pre.Matrix.data.(base + j) <- pre.Matrix.data.(base + j) +. l.b.(j)
    done
  done;
  let out =
    if l.relu then
      { pre with
        Matrix.data =
          Array.map (fun v -> if v > 0.0 then v else 0.0) pre.Matrix.data }
    else Matrix.copy pre
  in
  (out, { binput = x; bpre = pre })

(* Accumulates gradients over the whole batch; returns dL/dinput rows. *)
let backward_batch ?pool (l : t) (c : bcache) (dout : Matrix.t) : Matrix.t =
  let dpre =
    if l.relu then
      { dout with
        Matrix.data =
          Array.mapi
            (fun i d -> if c.bpre.Matrix.data.(i) > 0.0 then d else 0.0)
            dout.Matrix.data }
    else dout
  in
  Matrix.gemm_tn_acc l.gw dpre c.binput;
  let out_dim = dpre.Matrix.cols in
  for i = 0 to dpre.Matrix.rows - 1 do
    let base = i * out_dim in
    for j = 0 to out_dim - 1 do
      l.gb.(j) <- l.gb.(j) +. dpre.Matrix.data.(base + j)
    done
  done;
  Matrix.gemm ?pool dpre l.w

(* Accumulates gradients; returns dL/dinput. *)
let backward (l : t) (c : cache) (dout : float array) : float array =
  let dpre =
    if l.relu then
      Array.mapi (fun i d -> if c.pre.(i) > 0.0 then d else 0.0) dout
    else dout
  in
  Matrix.outer_add l.gw ~k:1.0 dpre c.input;
  Array.iteri (fun i d -> l.gb.(i) <- l.gb.(i) +. d) dpre;
  Matrix.matvec_t l.w dpre

let zero_grad (l : t) =
  Matrix.fill_zero l.gw;
  Array.fill l.gb 0 (Array.length l.gb) 0.0

(* Copy parameters from [src] (used for target-network sync). *)
let copy_params ~(src : t) ~(dst : t) =
  Array.blit src.w.Matrix.data 0 dst.w.Matrix.data 0 (Array.length src.w.Matrix.data);
  Array.blit src.b 0 dst.b 0 (Array.length src.b)
