(* Static throughput estimation in the style of llvm-mca.

   The paper's reward uses llvm-mca's throughput as a compile-time proxy
   for runtime (Eqn 3: higher throughput ⇒ lower runtime). We reproduce
   the analysis at the same altitude: machine instructions (from the
   codegen lowering) are binned onto execution resources; a block's
   steady-state cycles-per-iteration is the bottleneck resource pressure,
   floored by the dispatch width; blocks are weighted by a static
   frequency estimate (10× per loop-nest level, LLVM's classic static
   heuristic); and the module's throughput is the inverse of the weighted
   cycle total, so that "higher throughput, lesser runtime" holds by
   construction. *)

open Posetrl_ir
open Posetrl_codegen
open Target

(* per-class (units, reciprocal throughput when dispatched to one unit) *)
type resource_model = {
  dispatch_width : float;
  alu_units : float;
  mul_units : float;
  div_rthru : float; (* cycles per division (unpipelined) *)
  fp_units : float;
  fpdiv_rthru : float;
  load_units : float;
  store_units : float;
  branch_units : float;
  vec_units : float;
}

let model_of (t : Target.t) : resource_model =
  match t.arch with
  | X86_64 ->
    { dispatch_width = 4.0;
      alu_units = 4.0;
      mul_units = 1.0;
      div_rthru = 21.0;
      fp_units = 2.0;
      fpdiv_rthru = 13.0;
      load_units = 2.0;
      store_units = 1.0;
      branch_units = 1.0;
      vec_units = 2.0 }
  | AArch64 ->
    (* Cortex-A72-like: 3-wide dispatch, fewer pipes *)
    { dispatch_width = 3.0;
      alu_units = 2.0;
      mul_units = 1.0;
      div_rthru = 20.0;
      fp_units = 2.0;
      fpdiv_rthru = 17.0;
      load_units = 1.0;
      store_units = 1.0;
      branch_units = 1.0;
      vec_units = 2.0 }

(* steady-state cycles for one execution of a lowered block *)
let block_cycles (t : Target.t) (lb : Lower.lowered_block) : float =
  let rm = model_of t in
  let count klass =
    float_of_int
      (List.length (List.filter (fun m -> m.Target.klass = klass) lb.Lower.minsts))
  in
  let total = float_of_int (List.length lb.Lower.minsts) in
  let pressures =
    [ (count MAlu +. count MLea +. count MMov) /. rm.alu_units;
      count MMul /. rm.mul_units;
      count MDiv *. rm.div_rthru;
      (count MFpAdd +. count MFpMul) /. rm.fp_units;
      count MFpDiv *. rm.fpdiv_rthru;
      count MLoad /. rm.load_units;
      count MStore /. rm.store_units;
      (count MBranch +. count MCall) /. rm.branch_units;
      (count MVecAlu +. count MVecMem) /. rm.vec_units;
      total /. rm.dispatch_width ]
  in
  Float.max 1.0 (List.fold_left Float.max 0.0 pressures)

(* static block frequency: 10 per loop level, capped; entry-relative *)
let max_loop_boost = 3

let block_freqs (f : Func.t) : (string * float) list =
  let li = Loops.compute f in
  List.map
    (fun (b : Block.t) ->
      let d = min max_loop_boost (Loops.depth li b.Block.label) in
      (b.Block.label, 10.0 ** float_of_int d))
    f.Func.blocks

type estimate = {
  cycles : float;      (* weighted static cycles *)
  throughput : float;  (* work units per cycle; higher = faster *)
}

let throughput_scale = 1.0e6

let estimate_func (t : Target.t) (f : Func.t) : float =
  if Func.is_declaration f then 0.0
  else begin
    let lf = Lower.lower_func t f in
    let freqs = block_freqs f in
    List.fold_left
      (fun acc (lb : Lower.lowered_block) ->
        let freq = Option.value (List.assoc_opt lb.Lower.label freqs) ~default:1.0 in
        acc +. (freq *. block_cycles t lb))
      0.0 lf.Lower.blocks
  end

let estimate (t : Target.t) (m : Modul.t) : estimate =
  let cycles =
    List.fold_left (fun acc f -> acc +. estimate_func t f) 0.0 m.Modul.funcs
  in
  let cycles = Float.max 1.0 cycles in
  { cycles; throughput = throughput_scale /. cycles }

module Obs = Posetrl_obs

let m_evals = Obs.Metrics.counter "posetrl.mca.evals"

let throughput (t : Target.t) (m : Modul.t) : float =
  Obs.Metrics.inc m_evals;
  Obs.Span.with_ "posetrl.mca.throughput"
    ~attrs:[ ("target", Obs.Event.S t.name) ]
    (fun _ -> (estimate t m).throughput)
