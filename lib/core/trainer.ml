(* DDQN training loop (paper §V-A).

   Paper hyperparameters: ε annealed 1.0 → 0.01 over 20 000 timesteps,
   learning rate 1e-4, 1005 timesteps per iteration, episodes of 15
   steps, training batches sampled from replay memory every µ steps.
   [paper] mirrors those; [fast] scales the schedule down so the full
   reproduction (two action spaces × two targets) runs in minutes inside
   the bench executable — same algorithm, shorter anneal. *)

open Posetrl_support
open Posetrl_ir
module Rl = Posetrl_rl
module Obs = Posetrl_obs

(* Metric handles (global registry, registered once). The gauges are
   refreshed right before each [on_progress] tick so a caller can render
   its progress line entirely from [Obs.Metrics.value]. *)
let m_steps = Obs.Metrics.counter "posetrl.train.steps"
let m_episodes = Obs.Metrics.counter "posetrl.train.episodes"
let m_target_syncs = Obs.Metrics.counter "posetrl.train.target_syncs"
let m_epsilon = Obs.Metrics.gauge "posetrl.train.epsilon"
let m_loss = Obs.Metrics.gauge "posetrl.train.loss"
let m_mean_reward = Obs.Metrics.gauge "posetrl.train.mean_reward"
let m_mean_size_gain = Obs.Metrics.gauge "posetrl.train.mean_size_gain"
let m_r_binsize = Obs.Metrics.gauge "posetrl.train.r_binsize"
let m_r_throughput = Obs.Metrics.gauge "posetrl.train.r_throughput"
let m_replay_occupancy = Obs.Metrics.gauge "posetrl.train.replay_occupancy"

let m_episode_reward =
  Obs.Metrics.histogram "posetrl.train.episode_reward"
    ~buckets:[| -100.0; -10.0; -1.0; 0.0; 1.0; 10.0; 100.0; 1000.0 |]

(* last finished episode's total reward — the headline series a live
   scraper watches (`posetrl_train_reward` in /metrics) *)
let m_last_reward = Obs.Metrics.gauge "posetrl.train.reward"

let m_td_loss =
  Obs.Metrics.histogram "posetrl.train.td_loss"
    ~buckets:[| 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0 |]

(* per-action selection counters, labeled by sub-sequence id; handles
   are cached per training run (the action-space size is per-run) *)
let action_counter (i : int) =
  Obs.Metrics.counter ~labels:[ ("action", string_of_int i) ]
    "posetrl.train.action_selected"

type hyperparams = {
  total_steps : int;
  epsilon : Rl.Schedule.t;
  batch_size : int;
  train_every : int;      (* µ *)
  target_sync_every : int;
  replay_capacity : int;
  warmup_steps : int;     (* steps before training starts *)
  gamma : float;
  lr : float;
  hidden : int list;
  max_episode_steps : int;
  double : bool;
  reward_scale : float;
  (* factor applied to rewards before they reach the learner. At the
     default 1.0 the raw Eqn-1 rewards (often 10-100) saturate the Huber
     loss, whose +/-1-clipped gradients act as DQN reward clipping — which
     empirically trains best here. Kept as a knob for ablations. *)
  snapshot_every : int;
  (* every N steps the greedy policy is scored on a fixed probe subset of
     the corpus and the best-scoring weights are kept; DQN training can
     collapse late in the schedule, and returning the best snapshot (not
     the final weights) makes the outcome robust to that. 0 disables. *)
}

let paper = {
  total_steps = 20_100;   (* 20 iterations x 1005 timesteps *)
  epsilon = Rl.Schedule.create ~start:1.0 ~stop:0.01 ~decay_steps:20_000 ();
  batch_size = 32;
  train_every = 4;
  target_sync_every = 500;
  replay_capacity = 10_000;
  warmup_steps = 200;
  gamma = 0.99;
  lr = 1e-4;
  hidden = [ 128; 64 ];
  max_episode_steps = Environment.default_max_steps;
  double = true;
  reward_scale = 1.0;
  snapshot_every = 500;
}

let fast = {
  paper with
  total_steps = 1_800;
  epsilon = Rl.Schedule.create ~start:1.0 ~stop:0.05 ~decay_steps:1_200 ();
  target_sync_every = 200;
  warmup_steps = 64;
  replay_capacity = 4_000;
}

type progress = {
  step : int;
  episode : int;
  epsilon_now : float;
  mean_reward : float;   (* running mean episode reward *)
  mean_size_gain : float;
  r_binsize : float;     (* running mean per-episode Eqn-2 component sum *)
  r_throughput : float;  (* running mean per-episode Eqn-3 component sum *)
  loss : float;
}

(* One record per finished episode — the reward decomposition the run
   ledger streams to progress.jsonl. Component sums are unweighted
   (Eqns 2-3); the manifest's α/β recover the weighted split. *)
type episode_summary = {
  ep_index : int;
  ep_end_step : int;
  ep_reward : float;
  ep_r_binsize : float;
  ep_r_throughput : float;
  ep_size_gain_pct : float;
  ep_thru_gain_pct : float;
  ep_epsilon : float;
  ep_loss : float;
  ep_actions : int list;   (* sub-sequence ids taken this episode, in order *)
  ep_step_rewards : (float * float * float) list;
  (* per-step (reward, r_binsize, r_throughput), aligned with ep_actions —
     what the ledger persists so attribution is recomputable offline *)
}

type result = {
  agent : Rl.Dqn.t;
  episodes : int;
  final_mean_reward : float;
  attrib : Rl.Attrib.t;            (* streaming per-action attribution *)
  coverage : Obs.Coverage.t;       (* streaming decision-space coverage *)
  alerts : Obs.Health.alert list;  (* watchdog alerts, oldest first *)
}

(* The decision-space universe of an action space over the default ODG,
   packaged for [Obs.Coverage] (which takes plain arrays — the obs
   layer does not depend on posetrl_odg). *)
let coverage_universe (actions : Posetrl_odg.Action_space.t) :
    Obs.Coverage.universe =
  let nodes, edges, action_paths =
    Posetrl_odg.Action_space.coverage_universe actions
      (Lazy.force Posetrl_odg.Graph.default)
  in
  { Obs.Coverage.nodes; edges; action_paths }

(* One shared constructor so the trainer's default table and the CLI's
   live-serve table (which must be the same object to appear on
   /coverage) are built identically. *)
let make_coverage ?registry (actions : Posetrl_odg.Action_space.t) :
    Obs.Coverage.t =
  Obs.Coverage.create ?registry ~state_dim:Environment.state_dim
    (coverage_universe actions)

let train ?(hp = paper) ?(on_progress = fun (_ : progress) -> ())
    ?(on_episode = fun (_ : episode_summary) -> ())
    ?(on_step = fun (_ : int) -> ())
    ?(health = Obs.Health.default_config)
    ?(on_alert = fun (_ : Obs.Health.alert) -> ())
    ?inject_nan_at ?coverage
    ?pool ?(verify = false) ?(sanitize = Posetrl_analysis.Sanitize.Off)
    ?repro_dir
    ~(seed : int) ~(corpus : Modul.t array)
    ~(actions : Posetrl_odg.Action_space.t)
    ~(target : Posetrl_codegen.Target.t) () : result =
  if Array.length corpus = 0 then invalid_arg "Trainer.train: empty corpus";
  let rng = Rng.create seed in
  let net_rng = Rng.split rng in
  let env =
    Environment.create ~max_steps:hp.max_episode_steps ~verify ~sanitize
      ?repro_dir ~target ~actions ()
  in
  (* [pool] parallelizes the batch dimension of the DQN's gemm kernels;
     row partitioning keeps training byte-identical to --jobs 1 *)
  let agent =
    Rl.Dqn.create ~gamma:hp.gamma ~lr:hp.lr ~double:hp.double ?pool net_rng
      ~state_dim:Environment.state_dim ~hidden:hp.hidden
      ~n_actions:(Environment.n_actions env)
  in
  let replay = Rl.Replay.create hp.replay_capacity in
  let action_counters =
    Array.init (Environment.n_actions env) action_counter
  in
  (* streaming reward attribution: pure accumulation over the step
     stream, so the table is byte-identical across --jobs settings *)
  let attrib =
    Rl.Attrib.create ~registry:Obs.Metrics.global
      ~n_actions:(Environment.n_actions env) ~max_pos:hp.max_episode_steps ()
  in
  (* streaming decision-space coverage: same pure-fold determinism
     contract as [attrib]; the CLI passes its own table in when it also
     serves the live /coverage endpoint *)
  let coverage =
    match coverage with
    | Some c -> c
    | None -> make_coverage ~registry:Obs.Metrics.global actions
  in
  (* watchdog state: engine + the last-window action histogram it reads *)
  let watchdog = Obs.Health.create ~config:health () in
  let win_actions = Array.make (Environment.n_actions env) 0 in
  let episode = ref 0 in
  let reward_window = Queue.create () in
  let size_window = Queue.create () in
  let bin_window = Queue.create () in
  let thr_window = Queue.create () in
  let push_window q v =
    Queue.add v q;
    if Queue.length q > 40 then ignore (Queue.pop q)
  in
  let window_mean q =
    if Queue.is_empty q then 0.0
    else Queue.fold ( +. ) 0.0 q /. float_of_int (Queue.length q)
  in
  let step = ref 0 in
  let last_loss = ref 0.0 in
  (* best-snapshot machinery: score the greedy policy on a fixed probe set *)
  let probe_set =
    Array.init (min 8 (Array.length corpus)) (fun k ->
        corpus.(k * Array.length corpus / max 1 (min 8 (Array.length corpus))))
  in
  let probe_env =
    Environment.create ~max_steps:hp.max_episode_steps ~verify ~sanitize
      ?repro_dir ~target ~actions ()
  in
  let probe_score () =
    Array.fold_left
      (fun acc m ->
        let s = ref (Environment.reset probe_env m) in
        let total = ref 0.0 in
        let terminal = ref false in
        while not !terminal do
          let a = Rl.Dqn.greedy_action agent !s in
          let r = Environment.step probe_env a in
          total := !total +. r.Environment.reward;
          s := r.Environment.state;
          terminal := r.Environment.terminal
        done;
        acc +. !total)
      0.0 probe_set
  in
  let best_score = ref neg_infinity in
  let best_weights =
    Rl.Dqn.create ~gamma:hp.gamma ~lr:hp.lr ~double:hp.double (Rng.split rng)
      ~state_dim:Environment.state_dim ~hidden:hp.hidden
      ~n_actions:(Environment.n_actions env)
  in
  let maybe_snapshot () =
    if hp.snapshot_every > 0 && !step mod hp.snapshot_every = 0
       && !step >= hp.warmup_steps then begin
      let score = probe_score () in
      if score > !best_score then begin
        best_score := score;
        Posetrl_nn.Mlp.copy_params ~src:agent.Rl.Dqn.online
          ~dst:best_weights.Rl.Dqn.online
      end
    end
  in
  Obs.Span.with_ "posetrl.train.run" (fun _ ->
  while !step < hp.total_steps do
    incr episode;
    Obs.Metrics.inc m_episodes;
    let program = Rng.choose rng corpus in
    Obs.Span.with_ "posetrl.train.episode"
      ~attrs:[ ("episode", Obs.Event.I !episode) ]
      (fun ep_span ->
    let state = ref (Environment.reset env program) in
    let ep_reward = ref 0.0 in
    let ep_bin = ref 0.0 in
    let ep_thr = ref 0.0 in
    let ep_actions = ref [] in
    let ep_steps = ref [] in   (* per-step (r, rb, rt), newest first *)
    let ep_pos = ref 0 in      (* position in the episode's schedule *)
    let terminal = ref false in
    while (not !terminal) && !step < hp.total_steps do
      incr step;
      Obs.Metrics.inc m_steps;
      (* fault injection for the watchdog's CI path: poison one online
         weight, which cascades NaN through q-values and the TD loss *)
      (match inject_nan_at with
       | Some n when n = !step ->
         agent.Rl.Dqn.online.Posetrl_nn.Mlp.layers.(0)
           .Posetrl_nn.Layer.w.Posetrl_nn.Matrix.data.(0) <- Float.nan
       | _ -> ());
      let epsilon = Rl.Schedule.value hp.epsilon !step in
      Obs.Metrics.set m_epsilon epsilon;
      let action = Rl.Dqn.select_action agent rng ~epsilon !state in
      Obs.Metrics.inc action_counters.(action);
      win_actions.(action) <- win_actions.(action) + 1;
      ep_actions := action :: !ep_actions;
      let res = Environment.step env action in
      ep_reward := !ep_reward +. res.Environment.reward;
      ep_bin := !ep_bin +. res.Environment.r_binsize;
      ep_thr := !ep_thr +. res.Environment.r_throughput;
      ep_steps :=
        (res.Environment.reward, res.Environment.r_binsize,
         res.Environment.r_throughput)
        :: !ep_steps;
      Rl.Attrib.observe attrib ~action ~pos:!ep_pos
        ~reward:res.Environment.reward ~r_binsize:res.Environment.r_binsize
        ~r_throughput:res.Environment.r_throughput;
      (* the sketch hashes the pre-action embedding (the state the
         policy decided in); the table folds the step itself *)
      Obs.Coverage.observe_state coverage !state;
      Obs.Coverage.observe coverage ~action ~pos:!ep_pos
        ~reward:res.Environment.reward ~r_binsize:res.Environment.r_binsize
        ~r_throughput:res.Environment.r_throughput;
      incr ep_pos;
      Rl.Replay.push ~step:!step replay
        { Rl.Replay.state = !state;
          action;
          reward = res.Environment.reward *. hp.reward_scale;
          next_state = (if res.Environment.terminal then None else Some res.Environment.state) };
      state := res.Environment.state;
      terminal := res.Environment.terminal;
      Obs.Metrics.set m_replay_occupancy (float_of_int (Rl.Replay.size replay));
      if !step >= hp.warmup_steps && !step mod hp.train_every = 0
         && Rl.Replay.size replay >= hp.batch_size then begin
        let batch = Rl.Replay.sample rng replay hp.batch_size in
        last_loss := Rl.Dqn.train_batch agent batch;
        Obs.Metrics.set m_loss !last_loss;
        Obs.Metrics.observe m_td_loss !last_loss
      end;
      if !step mod hp.target_sync_every = 0 then begin
        Rl.Dqn.sync_target agent;
        Obs.Metrics.inc m_target_syncs
      end;
      maybe_snapshot ();
      if !step mod 200 = 0 then begin
        Obs.Metrics.set m_mean_reward (window_mean reward_window);
        Obs.Metrics.set m_mean_size_gain (window_mean size_window);
        Obs.Metrics.set m_r_binsize (window_mean bin_window);
        Obs.Metrics.set m_r_throughput (window_mean thr_window);
        ignore (Obs.Prof.sample_gc ());
        (* watchdog tick: snapshot the vital signs and run the rules;
           alerts never feed back into training arithmetic *)
        let sample =
          { Obs.Health.s_step = !step;
            s_episode = !episode;
            s_loss = !last_loss;
            s_mean_reward = window_mean reward_window;
            s_q_max =
              Option.value ~default:0.0
                (Obs.Metrics.value "posetrl.dqn.q_max");
            s_replay_size = Rl.Replay.size replay;
            s_replay_capacity = Rl.Replay.capacity replay;
            s_replay_age_mean = Rl.Replay.mean_age ~now:!step replay;
            s_weights_finite = Rl.Dqn.weights_finite agent;
            s_actions = Array.copy win_actions }
        in
        Array.fill win_actions 0 (Array.length win_actions) 0;
        List.iter on_alert (Obs.Health.check watchdog sample);
        Obs.Coverage.sample coverage ~step:!step;
        on_progress
          { step = !step;
            episode = !episode;
            epsilon_now = epsilon;
            mean_reward = window_mean reward_window;
            mean_size_gain = window_mean size_window;
            r_binsize = window_mean bin_window;
            r_throughput = window_mean thr_window;
            loss = !last_loss }
      end;
      on_step !step
    done;
    push_window reward_window !ep_reward;
    push_window bin_window !ep_bin;
    push_window thr_window !ep_thr;
    Obs.Metrics.observe m_episode_reward !ep_reward;
    Obs.Metrics.set m_last_reward !ep_reward;
    let size_gain, thr_gain = Environment.episode_gain env in
    push_window size_window size_gain;
    Obs.Span.set_attr ep_span "reward" (Obs.Event.F !ep_reward);
    Obs.Span.set_attr ep_span "size_gain_pct" (Obs.Event.F size_gain);
    on_episode
      { ep_index = !episode;
        ep_end_step = !step;
        ep_reward = !ep_reward;
        ep_r_binsize = !ep_bin;
        ep_r_throughput = !ep_thr;
        ep_size_gain_pct = size_gain;
        ep_thru_gain_pct = thr_gain;
        ep_epsilon = Rl.Schedule.value hp.epsilon !step;
        ep_loss = !last_loss;
        ep_actions = List.rev !ep_actions;
        ep_step_rewards = List.rev !ep_steps })
  done);
  (* hand back the best snapshot (or the final weights if snapshots are
     disabled or the final policy is the best one seen) *)
  if hp.snapshot_every > 0 then begin
    let final = probe_score () in
    if final < !best_score then begin
      Posetrl_nn.Mlp.copy_params ~src:best_weights.Rl.Dqn.online
        ~dst:agent.Rl.Dqn.online;
      Rl.Dqn.sync_target agent
    end
  end;
  { agent;
    episodes = !episode;
    final_mean_reward = window_mean reward_window;
    attrib;
    coverage;
    alerts = Obs.Health.alerts watchdog }
