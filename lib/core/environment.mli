(** The phase-ordering RL environment (paper §III-A, Fig. 3).

    State: IR2Vec program embedding of the current module. Action: a
    sub-sequence of Oz passes from the chosen action space. Reward:
    Eqns 1–3 against the per-episode unoptimized baseline. Episodes run
    a fixed number of steps (15, as in the paper's Table VI). *)

type t

val default_max_steps : int
(** 15. *)

val create :
  ?weights:Reward.weights ->
  ?max_steps:int ->
  ?pass_cfg:Posetrl_passes.Config.t ->
  ?verify:bool ->
  ?sanitize:Posetrl_analysis.Sanitize.level ->
  ?repro_dir:string ->
  target:Posetrl_codegen.Target.t ->
  actions:Posetrl_odg.Action_space.t ->
  unit -> t
(** [verify] runs the structural verifier after every pass a step
    applies; [sanitize] layers the Posetrl_analysis sanitizer (SSA
    dominance at [Ssa]) with repros written to [repro_dir] on failure. *)

val n_actions : t -> int

val state_dim : int
(** 300 — the IR2Vec embedding dimensionality. *)

val observe : Posetrl_ir.Modul.t -> float array
(** The state encoding of a module (embedding squashed into the unit
    ball). *)

val reset : t -> Posetrl_ir.Modul.t -> float array
(** Begin an episode on an unoptimized module; returns the initial state. *)

type step_result = {
  state : float array;
  reward : float;
  r_binsize : float;     (** unweighted Eqn-2 component of [reward] *)
  r_throughput : float;  (** unweighted Eqn-3 component of [reward] *)
  terminal : bool;
}

val step : t -> int -> step_result
(** Apply the action's pass sub-sequence and re-measure.
    @raise Invalid_argument if called before {!reset}. *)

val current_module : t -> Posetrl_ir.Modul.t
(** The module as transformed so far in this episode. *)

val episode_gain : t -> float * float
(** Cumulative (size gain %, throughput gain %) vs the episode baseline. *)
