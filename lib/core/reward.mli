(** Reward computation (paper §III-C, Eqns 1–3).

    [R = α·R_BinSize + β·R_Throughput] where [R_BinSize] is the per-step
    object-size delta and [R_Throughput] the per-step static-throughput
    delta, both normalized by the unoptimized module's measurement. *)

type weights = { alpha : float; beta : float }

val paper_weights : weights
(** α = 10, β = 5 (paper §V-A). *)

type measurement = {
  bin_size : float;    (** object-file bytes *)
  throughput : float;  (** MCA static throughput; higher = faster *)
}

type baseline = measurement
(** The unoptimized module's measurement, fixed per episode. *)

val r_binsize : base:baseline -> last:measurement -> curr:measurement -> float
(** Eqn 2: [(last − curr) / base] on sizes. *)

val r_throughput : base:baseline -> last:measurement -> curr:measurement -> float
(** Eqn 3: [(curr − last) / base] on throughputs. *)

type components = {
  total : float;       (** Eqn 1: [α·binsize + β·throughput] *)
  binsize : float;     (** Eqn 2, unweighted *)
  throughput : float;  (** Eqn 3, unweighted *)
}

val decompose :
  ?weights:weights -> base:baseline -> last:measurement -> curr:measurement ->
  unit -> components
(** Eqn 1 plus its unweighted Eqn-2/3 components, which the run ledger
    persists per step ([progress.jsonl]). *)

val compute :
  ?weights:weights -> base:baseline -> last:measurement -> curr:measurement ->
  unit -> float
(** Eqn 1 ([(decompose ...).total]). *)

val measure : Posetrl_codegen.Target.t -> Posetrl_ir.Modul.t -> measurement
(** Object size (codegen model) and MCA throughput of a module. *)
