(* Greedy policy rollout: given a trained agent and an unoptimized
   module, predict the action sequence and the optimized module
   (paper Table VI shows such predicted sequences). *)

open Posetrl_ir
module Rl = Posetrl_rl

type rollout = {
  actions : int list;
  optimized : Modul.t;
}

let predict ?(max_steps = Environment.default_max_steps) ?(verify = false)
    ?(sanitize = Posetrl_analysis.Sanitize.Off) ?repro_dir
    ~(agent : Rl.Dqn.t) ~(actions : Posetrl_odg.Action_space.t)
    ~(target : Posetrl_codegen.Target.t) (m : Modul.t) : rollout =
  let env =
    Environment.create ~max_steps ~verify ~sanitize ?repro_dir ~target ~actions ()
  in
  let state = ref (Environment.reset env m) in
  let taken = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let a = Rl.Dqn.greedy_action agent !state in
    taken := a :: !taken;
    let res = Environment.step env a in
    state := res.Environment.state;
    if res.Environment.terminal then continue_ := false
  done;
  { actions = List.rev !taken; optimized = Environment.current_module env }

(* Apply an explicit action-index sequence (replay of a Table-VI row). *)
let apply_sequence ?(pass_cfg = Posetrl_passes.Config.oz)
    ~(actions : Posetrl_odg.Action_space.t) (seq : int list) (m : Modul.t) :
    Modul.t =
  List.fold_left
    (fun m a ->
      Posetrl_passes.Pass_manager.run pass_cfg
        (Posetrl_odg.Action_space.action actions a)
        m)
    m seq

let pp_sequence ppf (seq : int list) =
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any " -> ") int) seq
