(** Greedy policy rollout (the predicted sequences of paper Table VI). *)

type rollout = {
  actions : int list;            (** chosen action indices, in order *)
  optimized : Posetrl_ir.Modul.t; (** the module after applying them *)
}

val predict :
  ?max_steps:int ->
  ?verify:bool ->
  ?sanitize:Posetrl_analysis.Sanitize.level ->
  ?repro_dir:string ->
  agent:Posetrl_rl.Dqn.t ->
  actions:Posetrl_odg.Action_space.t ->
  target:Posetrl_codegen.Target.t ->
  Posetrl_ir.Modul.t -> rollout
(** Roll the greedy policy out on an unoptimized module. *)

val apply_sequence :
  ?pass_cfg:Posetrl_passes.Config.t ->
  actions:Posetrl_odg.Action_space.t ->
  int list -> Posetrl_ir.Modul.t -> Posetrl_ir.Modul.t
(** Replay an explicit action-index sequence. *)

val pp_sequence : Format.formatter -> int list -> unit
