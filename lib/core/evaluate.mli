(** Model-vs-Oz evaluation (paper Tables IV & V, Fig. 5). *)

type program_result = {
  prog_name : string;
  size_unopt : int;
  size_oz : int;
  size_model : int;
  time_oz : int option;    (** interpreter cycles; [None] if not executed *)
  time_model : int option;
  predicted : int list;    (** the rollout's action indices *)
}

val size_reduction_pct : program_result -> float
(** % size reduction of the model binary vs the Oz binary (positive =
    model smaller), the metric of Table IV. *)

val time_improvement_pct : program_result -> float option
(** % execution-time decrease vs Oz (positive = model faster), the
    metric of Table V. *)

val run_time : Posetrl_ir.Modul.t -> int option
(** Interpreter cycles of a module's main, or [None] on a trap. *)

val evaluate_program :
  ?measure_time:bool ->
  ?verify:bool ->
  ?sanitize:Posetrl_analysis.Sanitize.level ->
  ?repro_dir:string ->
  agent:Posetrl_rl.Dqn.t ->
  actions:Posetrl_odg.Action_space.t ->
  target:Posetrl_codegen.Target.t ->
  name:string ->
  Posetrl_ir.Modul.t -> program_result
(** [verify]/[sanitize] check every pass both the Oz baseline and the
    model rollout apply (see {!Environment.create}). *)

val evaluate_programs :
  ?measure_time:bool ->
  ?verify:bool ->
  ?sanitize:Posetrl_analysis.Sanitize.level ->
  ?repro_dir:string ->
  ?pool:Posetrl_support.Pool.t ->
  agent:Posetrl_rl.Dqn.t ->
  actions:Posetrl_odg.Action_space.t ->
  target:Posetrl_codegen.Target.t ->
  (string * (unit -> Posetrl_ir.Modul.t)) list -> program_result list
(** Evaluate a list of (name, module-builder) programs, in input order.
    With [pool] the programs run across the pool's domains; results are
    byte-identical to the sequential path (greedy rollouts are RNG-free
    and [Pool.map] preserves order). Each task feeds the
    [posetrl.pool.*] metrics and emits a [posetrl.pool.task] span. *)

type suite_summary = {
  suite : string;
  n : int;
  min_red : float;
  avg_red : float;
  max_red : float;
  avg_time_impr : float option;
}

val summarize_suite : suite:string -> program_result list -> suite_summary
(** The min/avg/max aggregation of Table IV plus the Table V average. *)

val result_to_json : program_result -> Posetrl_obs.Json.t
val summary_to_json : suite_summary -> Posetrl_obs.Json.t

val suites_to_json :
  (suite_summary * program_result list) list -> Posetrl_obs.Json.t
(** The run ledger's [eval.json] document: per-suite summaries with the
    per-program rows nested under each ([Run.compare_runs] keys on the
    suite name and [avg_red]). *)
