(* Evaluation harness: the model-vs-Oz comparisons behind Table IV,
   Table V and Fig. 5.

   For each validation program we compile three ways — unoptimized, -Oz,
   and with the trained model's predicted sequence — then compare object
   sizes (codegen model) and execution time (interpreter cycles on the
   x86 cost model), exactly the two axes the paper reports. *)

open Posetrl_ir
module Rl = Posetrl_rl

type program_result = {
  prog_name : string;
  size_unopt : int;
  size_oz : int;
  size_model : int;
  time_oz : int option;    (* interpreter cycles; None if not executed *)
  time_model : int option;
  predicted : int list;
}

(* percentage of size reduction of the model binary vs the Oz binary;
   positive = model smaller (paper Table IV) *)
let size_reduction_pct (r : program_result) : float =
  if r.size_oz = 0 then 0.0
  else 100.0 *. float_of_int (r.size_oz - r.size_model) /. float_of_int r.size_oz

(* percentage decrease of execution time vs Oz; positive = model faster
   (paper Table V) *)
let time_improvement_pct (r : program_result) : float option =
  match r.time_oz, r.time_model with
  | Some toz, Some tm when toz > 0 ->
    Some (100.0 *. float_of_int (toz - tm) /. float_of_int toz)
  | _ -> None

let run_time (m : Modul.t) : int option =
  match Posetrl_interp.Interp.run m with
  | { Posetrl_interp.Interp.cycles; _ } -> Some cycles
  | exception Posetrl_interp.Interp.Trap _ -> None

let evaluate_program ?(measure_time = true) ?(verify = false)
    ?(sanitize = Posetrl_analysis.Sanitize.Off) ?repro_dir ~(agent : Rl.Dqn.t)
    ~(actions : Posetrl_odg.Action_space.t)
    ~(target : Posetrl_codegen.Target.t) ~(name : string) (m : Modul.t) :
    program_result =
  let size_of m = Posetrl_codegen.Objfile.size target m in
  let m_oz =
    Posetrl_passes.Pass_manager.run_level ~verify ~sanitize ?repro_dir
      Posetrl_passes.Pipelines.Oz m
  in
  let rollout = Inference.predict ~verify ~sanitize ?repro_dir ~agent ~actions ~target m in
  let m_model = rollout.Inference.optimized in
  { prog_name = name;
    size_unopt = size_of m;
    size_oz = size_of m_oz;
    size_model = size_of m_model;
    time_oz = (if measure_time then run_time m_oz else None);
    time_model = (if measure_time then run_time m_model else None);
    predicted = rollout.Inference.actions }

(* --- parallel suite evaluation (pool) --------------------------------------

   Programs are independent: each worker builds its module fresh (the
   workload generators carry their own seeded RNGs), runs the greedy
   rollout and sizes the three binaries. Results come back in input
   order from [Pool.map_timed], so the output — and everything derived
   from it (eval.json) — is byte-identical to the sequential path. The
   owner domain then emits one span per task from the recorded wall
   timings and feeds the [posetrl.pool.*] series. *)

module Pool = Posetrl_support.Pool
module Obs = Posetrl_obs

let m_pool_jobs = Obs.Metrics.gauge "posetrl.pool.jobs"
let m_pool_tasks = Obs.Metrics.counter "posetrl.pool.eval_tasks"
let m_pool_task_s = Obs.Metrics.histogram "posetrl.pool.task_seconds"
let m_pool_batch_s = Obs.Metrics.histogram "posetrl.pool.batch_seconds"

let evaluate_programs ?(measure_time = true) ?(verify = false)
    ?(sanitize = Posetrl_analysis.Sanitize.Off) ?repro_dir ?pool
    ~(agent : Rl.Dqn.t) ~(actions : Posetrl_odg.Action_space.t)
    ~(target : Posetrl_codegen.Target.t)
    (programs : (string * (unit -> Modul.t)) list) : program_result list =
  (* the sanitizer keeps all its state per-call (see Posetrl_analysis),
     so sanitized evaluation is safe on pool workers *)
  let eval_one (name, mk) =
    evaluate_program ~measure_time ~verify ~sanitize ?repro_dir ~agent ~actions
      ~target ~name (mk ())
  in
  match pool with
  | None -> List.map eval_one programs
  | Some p ->
    Obs.Metrics.set m_pool_jobs (float_of_int (Pool.jobs p));
    (* pool timing stamps tick on Pool.clock, which Obs.Clock mirrors —
       one clock for the batch bracket and the per-task stamps, so the
       utilization aggregates are exact under a fake clock too *)
    let t0 = Obs.Clock.now () in
    let results, timings = Pool.map_timed p eval_one (Array.of_list programs) in
    let t1 = Obs.Clock.now () in
    Obs.Metrics.observe m_pool_batch_s (t1 -. t0);
    ignore (Obs.Prof.note_pool_batch ~jobs:(Pool.jobs p) ~t0 ~t1 timings);
    let names = Array.of_list (List.map fst programs) in
    Array.iter
      (fun (tm : Pool.timing) ->
        Obs.Metrics.inc m_pool_tasks;
        Obs.Metrics.observe m_pool_task_s tm.Pool.t_dur;
        Obs.Span.emit
          ~attrs:[ ("program", Obs.Event.S names.(tm.Pool.t_index)) ]
          ~tid:tm.Pool.t_domain
          ~name:"posetrl.pool.task" ~t_start:tm.Pool.t_start ~dur:tm.Pool.t_dur ())
      timings;
    Array.to_list results

type suite_summary = {
  suite : string;
  n : int;
  min_red : float;
  avg_red : float;
  max_red : float;
  avg_time_impr : float option;
}

let summarize_suite ~(suite : string) (results : program_result list) :
    suite_summary =
  let reds = List.map size_reduction_pct results in
  let times = List.filter_map time_improvement_pct results in
  { suite;
    n = List.length results;
    min_red = Posetrl_support.Stats.minimum reds;
    avg_red = Posetrl_support.Stats.mean reds;
    max_red = Posetrl_support.Stats.maximum reds;
    avg_time_impr =
      (if times = [] then None else Some (Posetrl_support.Stats.mean times)) }

(* --- run-ledger serialization (eval.json) --------------------------------- *)

module Json = Posetrl_obs.Json

let opt_int = function Some i -> Json.Int i | None -> Json.Null
let opt_float = function Some f -> Json.Float f | None -> Json.Null

let result_to_json (r : program_result) : Json.t =
  Json.Obj
    [ ("name", Json.Str r.prog_name);
      ("size_unopt", Json.Int r.size_unopt);
      ("size_oz", Json.Int r.size_oz);
      ("size_model", Json.Int r.size_model);
      ("size_red_pct", Json.Float (size_reduction_pct r));
      ("time_oz", opt_int r.time_oz);
      ("time_model", opt_int r.time_model);
      ("time_impr_pct", opt_float (time_improvement_pct r));
      ("predicted", Json.Arr (List.map (fun a -> Json.Int a) r.predicted)) ]

let summary_to_json (s : suite_summary) : Json.t =
  Json.Obj
    [ ("suite", Json.Str s.suite);
      ("n", Json.Int s.n);
      ("min_red", Json.Float s.min_red);
      ("avg_red", Json.Float s.avg_red);
      ("max_red", Json.Float s.max_red);
      ("avg_time_impr", opt_float s.avg_time_impr) ]

(* The eval.json document: per-suite summaries (the compare side keys on
   "suite"/"avg_red") with the per-program rows nested under each. *)
let suites_to_json (suites : (suite_summary * program_result list) list) :
    Json.t =
  Json.Obj
    [ ("suites",
       Json.Arr
         (List.map
            (fun (s, results) ->
              match summary_to_json s with
              | Json.Obj fields ->
                Json.Obj
                  (fields
                   @ [ ("programs", Json.Arr (List.map result_to_json results)) ])
              | j -> j)
            suites)) ]
