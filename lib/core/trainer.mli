(** DDQN training loop (paper §V-A). *)

type hyperparams = {
  total_steps : int;
  epsilon : Posetrl_rl.Schedule.t;
  batch_size : int;
  train_every : int;         (** µ — train on a sampled batch every µ steps *)
  target_sync_every : int;
  replay_capacity : int;
  warmup_steps : int;
  gamma : float;
  lr : float;
  hidden : int list;
  max_episode_steps : int;
  double : bool;             (** Double DQN (paper) vs vanilla target *)
  reward_scale : float;      (** learner-side reward factor; 1.0 default *)
  snapshot_every : int;      (** best-snapshot probe period; 0 disables *)
}

val paper : hyperparams
(** The paper's schedule: 20 100 steps, ε 1.0 → 0.01 over 20 000, lr 1e-4,
    episodes of 15 steps, replay 10k, Double DQN. *)

val fast : hyperparams
(** A scaled-down schedule for quick experiments and the bench harness. *)

type progress = {
  step : int;
  episode : int;
  epsilon_now : float;
  mean_reward : float;
  mean_size_gain : float;
  r_binsize : float;     (** windowed mean per-episode Eqn-2 component sum *)
  r_throughput : float;  (** windowed mean per-episode Eqn-3 component sum *)
  loss : float;
}

type episode_summary = {
  ep_index : int;
  ep_end_step : int;
  ep_reward : float;
  ep_r_binsize : float;     (** episode sum of unweighted Eqn-2 components *)
  ep_r_throughput : float;  (** episode sum of unweighted Eqn-3 components *)
  ep_size_gain_pct : float;
  ep_thru_gain_pct : float;
  ep_epsilon : float;
  ep_loss : float;
  ep_actions : int list;    (** sub-sequence ids taken this episode, in order *)
  ep_step_rewards : (float * float * float) list;
  (** per-step (reward, r_binsize, r_throughput), aligned with
      [ep_actions] — persisted so attribution is recomputable from the
      ledger alone *)
}
(** One record per finished episode; the run ledger streams these to
    [progress.jsonl] as the reward-decomposition telemetry. *)

type result = {
  agent : Posetrl_rl.Dqn.t;
  episodes : int;
  final_mean_reward : float;
  attrib : Posetrl_rl.Attrib.t;
  (** streaming per-action reward attribution over the whole run;
      byte-identical across [--jobs] settings *)
  coverage : Posetrl_obs.Coverage.t;
  (** streaming decision-space coverage (ODG node/edge visits,
      transition matrix, entropy series, state sketch); same
      determinism contract as [attrib] *)
  alerts : Posetrl_obs.Health.alert list;
  (** watchdog alerts fired during the run, oldest first *)
}

val coverage_universe :
  Posetrl_odg.Action_space.t -> Posetrl_obs.Coverage.universe
(** The decision-space universe of an action space over the default
    ODG, packaged for {!Posetrl_obs.Coverage}. *)

val make_coverage :
  ?registry:Posetrl_obs.Metrics.t ->
  Posetrl_odg.Action_space.t -> Posetrl_obs.Coverage.t
(** A fresh coverage table over {!coverage_universe} with the IR2Vec
    state width — what {!train} builds when no [coverage] is passed.
    The CLI builds one itself (with the global registry) so the same
    table can both feed training and back the live [/coverage]
    endpoint. *)

val train :
  ?hp:hyperparams ->
  ?on_progress:(progress -> unit) ->
  ?on_episode:(episode_summary -> unit) ->
  ?on_step:(int -> unit) ->
  ?health:Posetrl_obs.Health.config ->
  ?on_alert:(Posetrl_obs.Health.alert -> unit) ->
  ?inject_nan_at:int ->
  ?coverage:Posetrl_obs.Coverage.t ->
  ?pool:Posetrl_support.Pool.t ->
  ?verify:bool ->
  ?sanitize:Posetrl_analysis.Sanitize.level ->
  ?repro_dir:string ->
  seed:int ->
  corpus:Posetrl_ir.Modul.t array ->
  actions:Posetrl_odg.Action_space.t ->
  target:Posetrl_codegen.Target.t ->
  unit -> result
(** Train a phase-ordering agent. Deterministic per seed — including
    under [pool], which parallelizes the batch dimension of the DQN's
    gemm kernels by row partitioning (byte-identical arithmetic; see
    DESIGN.md §9). Returns the best-probe-score snapshot when
    [hp.snapshot_every > 0], otherwise the final weights.

    [on_step] fires once per environment step (after the step's metric
    updates) with the global step index — the hook the CLI uses to pump
    the [--serve] telemetry server ({!Posetrl_obs.Httpd.pump}) without
    threads. It must be cheap and must not raise.

    A {!Posetrl_obs.Health} watchdog (configured by [health]) runs on
    every progress tick; [on_alert] fires once per alert as it happens
    (the CLI appends them to the run dir's [alerts.jsonl]), and the full
    list comes back in [result.alerts]. [inject_nan_at] poisons one
    online-network weight at that global step — fault injection for
    exercising the NaN watchdog end to end (CI; never set in real
    training). *)
