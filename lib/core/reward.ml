(* Reward computation (paper §III-C, Eqns 1-3).

     R = α·R_BinSize + β·R_Throughput
     R_BinSize    = (BinSize_last − BinSize_curr) / BinSize_base
     R_Throughput = (Throughput_curr − Throughput_last) / Throughput_base

   with α = 10 and β = 5 ("to give more weight to R_BinSize than
   R_Throughput", §V-A). Baselines are the unoptimized module's object
   size and MCA throughput, fixed per episode. *)

type weights = {
  alpha : float;
  beta : float;
}

let paper_weights = { alpha = 10.0; beta = 5.0 }

type measurement = {
  bin_size : float;    (* object-file bytes *)
  throughput : float;  (* MCA static throughput, higher = faster *)
}

type baseline = measurement (* the unoptimized module's measurement *)

let r_binsize ~(base : baseline) ~(last : measurement) ~(curr : measurement) =
  if base.bin_size <= 0.0 then 0.0
  else (last.bin_size -. curr.bin_size) /. base.bin_size

let r_throughput ~(base : baseline) ~(last : measurement) ~(curr : measurement) =
  if base.throughput <= 0.0 then 0.0
  else (curr.throughput -. last.throughput) /. base.throughput

(* The Eqn-1 total together with its two unweighted components; the run
   ledger persists the components per step so finished runs can be
   re-analysed without re-measuring. *)
type components = {
  total : float;       (* Eqn 1: α·binsize + β·throughput *)
  binsize : float;     (* Eqn 2, unweighted *)
  throughput : float;  (* Eqn 3, unweighted *)
}

let decompose ?(weights = paper_weights) ~(base : baseline)
    ~(last : measurement) ~(curr : measurement) () : components =
  let binsize = r_binsize ~base ~last ~curr in
  let throughput = r_throughput ~base ~last ~curr in
  { total = (weights.alpha *. binsize) +. (weights.beta *. throughput);
    binsize;
    throughput }

let compute ?(weights = paper_weights) ~(base : baseline) ~(last : measurement)
    ~(curr : measurement) () : float =
  (decompose ~weights ~base ~last ~curr ()).total

(* Measurement of a module under a target. *)
let measure (target : Posetrl_codegen.Target.t) (m : Posetrl_ir.Modul.t) : measurement =
  { bin_size = float_of_int (Posetrl_codegen.Objfile.size target m);
    throughput = Posetrl_mca.Mca.throughput target m }
