(* The RL environment (paper §III-A, Fig. 3).

   State: the IR2Vec embedding of the current module (300-dim, squashed
   into the unit ball for network conditioning). Action: an index into
   the chosen sub-sequence action space; applying it runs those passes
   through the LLVM-style pass manager (the "opt" box of Fig. 3).
   Reward: Eqns 1-3 against the per-episode unoptimized baseline.
   Episodes run a fixed number of steps (15, matching the predicted
   sequences of Table VI). *)

open Posetrl_ir
module Odg = Posetrl_odg
module Obs = Posetrl_obs

let m_steps = Obs.Metrics.counter "posetrl.env.steps"
let m_resets = Obs.Metrics.counter "posetrl.env.resets"

let m_step_seconds = Obs.Metrics.histogram "posetrl.env.step_seconds"

let m_reward =
  Obs.Metrics.histogram "posetrl.env.reward"
    ~buckets:[| -100.0; -10.0; -1.0; -0.1; 0.0; 0.1; 1.0; 10.0; 100.0 |]

type t = {
  target : Posetrl_codegen.Target.t;
  actions : Odg.Action_space.t;
  pass_cfg : Posetrl_passes.Config.t;
  weights : Reward.weights;
  max_steps : int;
  verify : bool;
  sanitize : Posetrl_analysis.Sanitize.level;
  repro_dir : string option;
  (* episode state *)
  mutable current : Modul.t option;
  mutable base : Reward.baseline;
  mutable last : Reward.measurement;
  mutable step_idx : int;
}

let default_max_steps = 15

let create ?(weights = Reward.paper_weights) ?(max_steps = default_max_steps)
    ?(pass_cfg = Posetrl_passes.Config.oz) ?(verify = false)
    ?(sanitize = Posetrl_analysis.Sanitize.Off) ?repro_dir
    ~(target : Posetrl_codegen.Target.t) ~(actions : Odg.Action_space.t) () : t =
  { target;
    actions;
    pass_cfg;
    weights;
    max_steps;
    verify;
    sanitize;
    repro_dir;
    current = None;
    base = { Reward.bin_size = 0.0; Reward.throughput = 0.0 };
    last = { Reward.bin_size = 0.0; Reward.throughput = 0.0 };
    step_idx = 0 }

let n_actions (t : t) = Odg.Action_space.n_actions t.actions

let state_dim = Posetrl_ir2vec.Vocabulary.dimension

let observe (m : Modul.t) : float array = Posetrl_ir2vec.Encoder.embed_program_state m

(* Begin an episode on (a copy of) the unoptimized module. *)
let reset (t : t) (m : Modul.t) : float array =
  Obs.Metrics.inc m_resets;
  let meas = Reward.measure t.target m in
  t.current <- Some m;
  t.base <- meas;
  t.last <- meas;
  t.step_idx <- 0;
  observe m

type step_result = {
  state : float array;
  reward : float;
  r_binsize : float;     (* unweighted Eqn-2 component of [reward] *)
  r_throughput : float;  (* unweighted Eqn-3 component of [reward] *)
  terminal : bool;
}

let step (t : t) (action : int) : step_result =
  match t.current with
  | None -> invalid_arg "Environment.step: reset first"
  | Some m ->
    let names = Odg.Action_space.action t.actions action in
    let t0 = Obs.Clock.now () in
    Obs.Span.with_ "posetrl.env.step"
      ~attrs:
        [ ("action", Obs.Event.I action);
          ("passes", Obs.Event.S (String.concat " " names)) ]
      (fun sp ->
        let m' =
          Posetrl_passes.Pass_manager.run ~verify:t.verify ~sanitize:t.sanitize
            ?repro_dir:t.repro_dir t.pass_cfg names m
        in
        let curr = Reward.measure t.target m' in
        let comps =
          Reward.decompose ~weights:t.weights ~base:t.base ~last:t.last ~curr ()
        in
        let reward = comps.Reward.total in
        (* per-action deltas for the trace report (size in model bytes,
           throughput in MCA units; positive = improvement) *)
        Obs.Span.set_attr sp "reward" (Obs.Event.F reward);
        Obs.Span.set_attr sp "d_size"
          (Obs.Event.F (t.last.Reward.bin_size -. curr.Reward.bin_size));
        Obs.Span.set_attr sp "d_thru"
          (Obs.Event.F (curr.Reward.throughput -. t.last.Reward.throughput));
        t.current <- Some m';
        t.last <- curr;
        t.step_idx <- t.step_idx + 1;
        Obs.Metrics.inc m_steps;
        Obs.Metrics.observe m_reward reward;
        Obs.Metrics.observe m_step_seconds (Obs.Clock.now () -. t0);
        { state = observe m';
          reward;
          r_binsize = comps.Reward.binsize;
          r_throughput = comps.Reward.throughput;
          terminal = t.step_idx >= t.max_steps })

let current_module (t : t) : Modul.t =
  match t.current with
  | Some m -> m
  | None -> invalid_arg "Environment.current_module: reset first"

(* Cumulative size/throughput improvement of the episode so far, relative
   to the unoptimized baseline; used for monitoring. *)
let episode_gain (t : t) : float * float =
  let size_gain =
    if t.base.Reward.bin_size <= 0.0 then 0.0
    else
      100.0 *. (t.base.Reward.bin_size -. t.last.Reward.bin_size)
      /. t.base.Reward.bin_size
  in
  let thr_gain =
    if t.base.Reward.throughput <= 0.0 then 0.0
    else
      100.0 *. (t.last.Reward.throughput -. t.base.Reward.throughput)
      /. t.base.Reward.throughput
  in
  (size_gain, thr_gain)
