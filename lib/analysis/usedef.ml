(* Use-def chains and demand-driven liveness over them.

   [of_func] builds both directions of the chain in one traversal:
   definitions (SSA register -> defining site) and uses (register ->
   every site that reads it, including terminators). [demand_closure]
   is the mark phase of aggressive DCE factored out so the dce pass and
   the lint dead-code report share one implementation: seed from the
   side-effect roots, then chase operands through the def table. *)

open Posetrl_ir
module ISet = Set.Make (Int)

type site = {
  block : string;
  insn : Instr.t option; (* None = use in the block's terminator *)
}

type t = {
  defs : (int, string * Instr.t) Hashtbl.t;
  uses : (int, site list) Hashtbl.t;
}

let of_func (f : Func.t) : t =
  let defs = Func.def_map f in
  let uses : (int, site list) Hashtbl.t = Hashtbl.create 64 in
  let add_use site v =
    match v with
    | Value.Reg r ->
      let cur = Option.value (Hashtbl.find_opt uses r) ~default:[] in
      Hashtbl.replace uses r (site :: cur)
    | _ -> ()
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          let site = { block = b.Block.label; insn = Some i } in
          List.iter (add_use site) (Instr.operands i.Instr.op))
        b.Block.insns;
      let site = { block = b.Block.label; insn = None } in
      List.iter (add_use site) (Instr.term_operands b.Block.term))
    f.Func.blocks;
  { defs; uses }

let def_site (t : t) r = Hashtbl.find_opt t.defs r

let uses_of (t : t) r = Option.value (Hashtbl.find_opt t.uses r) ~default:[]

let use_count (t : t) r = List.length (uses_of t r)

(* Registers transitively demanded by observable behaviour: terminator
   operands and side-effecting instructions are roots; demand propagates
   backward through operand chains via the def table. This is exactly
   the mark phase of -adce; the table maps demanded register -> (). *)
let demand_closure (f : Func.t) : (int, unit) Hashtbl.t =
  let defs = Func.def_map f in
  let live = Hashtbl.create 64 in
  let work = Queue.create () in
  let mark v =
    match v with
    | Value.Reg r when not (Hashtbl.mem live r) ->
      Hashtbl.replace live r ();
      Queue.add r work
    | _ -> ()
  in
  (* roots: terminator operands and side-effecting instructions *)
  List.iter
    (fun (b : Block.t) ->
      List.iter mark (Instr.term_operands b.Block.term);
      List.iter
        (fun (i : Instr.t) ->
          if Instr.has_side_effects i.Instr.op then begin
            if i.Instr.id >= 0 then begin
              Hashtbl.replace live i.Instr.id ();
              Queue.add i.Instr.id work
            end;
            List.iter mark (Instr.operands i.Instr.op)
          end)
        b.Block.insns)
    f.Func.blocks;
  while not (Queue.is_empty work) do
    let r = Queue.pop work in
    match Hashtbl.find_opt defs r with
    | Some (_, i) -> List.iter mark (Instr.operands i.Instr.op)
    | None -> () (* parameter *)
  done;
  live

(* Instructions the demand closure does NOT reach — dead code -adce
   would delete: (block, id) of every undemanded pure result. *)
let undemanded (f : Func.t) : (string * int) list =
  let live = demand_closure f in
  List.concat_map
    (fun (b : Block.t) ->
      List.filter_map
        (fun (i : Instr.t) ->
          if i.Instr.id >= 0
             && (not (Hashtbl.mem live i.Instr.id))
             && not (Instr.has_side_effects i.Instr.op)
          then Some (b.Block.label, i.Instr.id)
          else None)
        b.Block.insns)
    f.Func.blocks
