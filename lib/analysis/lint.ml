(* posetrl lint: static findings over a MiniIR module.

   Severity policy (what the CI gate keys on):
     - Error:   structural verifier failures, SSA dominance violations,
                purity attributes contradicted by the function body —
                each of these means a pass produced or would consume
                wrong IR.
     - Warning: dead stores and unreachable blocks — wasted size the
                pipeline should have cleaned up, but semantically fine.
     - Info:    dead pure code, recomputed available expressions and
                missing purity attributes — optimisation opportunities.

   The bundled workload suite at -Oz must lint with zero errors; CI
   runs [posetrl lint --suite --fail-on error] to keep it that way. *)

open Posetrl_ir
module Obs = Posetrl_obs
module SSet = Set.Make (String)

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Result.Ok Error
  | "warning" -> Result.Ok Warning
  | "info" -> Result.Ok Info
  | s ->
    Result.Error (Printf.sprintf "unknown severity %S (error|warning|info)" s)

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

type finding = {
  severity : severity;
  rule : string;          (* stable kebab-case rule id *)
  func : string;
  block : string option;
  message : string;
}

let finding_to_string f =
  Printf.sprintf "%-7s %-22s %s%s: %s"
    (severity_to_string f.severity)
    f.rule
    f.func
    (match f.block with Some b -> "/" ^ b | None -> "")
    f.message

let verifier_findings (m : Modul.t) : finding list =
  let structural = Verifier.verify_module m in
  let with_dom = Verifier.verify_module ~dom:true m in
  let structural_keys =
    SSet.of_list (List.map Verifier.error_to_string structural)
  in
  let of_err rule (e : Verifier.error) =
    { severity = Error;
      rule;
      func = e.Verifier.func;
      block = e.Verifier.block;
      message = e.Verifier.message }
  in
  List.map (of_err "structural") structural
  @ List.filter_map
      (fun e ->
        if SSet.mem (Verifier.error_to_string e) structural_keys then None
        else Some (of_err "undominated-use" e))
      with_dom

let unreachable_findings (f : Func.t) : finding list =
  let cfg = Cfg.of_func f in
  let reach = Cfg.reachable cfg in
  List.filter_map
    (fun (b : Block.t) ->
      if Cfg.SSet.mem b.Block.label reach then None
      else
        Some
          { severity = Warning;
            rule = "unreachable-block";
            func = f.Func.name;
            block = Some b.Block.label;
            message = "block is unreachable from the entry" })
    f.Func.blocks

let dead_store_findings (f : Func.t) : finding list =
  List.map
    (fun (block, idx, reason) ->
      { severity = Warning;
        rule = "dead-store";
        func = f.Func.name;
        block = Some block;
        message = Printf.sprintf "store at index %d is dead: %s" idx reason })
    (Effects.dead_stores f)

let dead_code_findings (f : Func.t) : finding list =
  List.map
    (fun (block, id) ->
      { severity = Info;
        rule = "dead-code";
        func = f.Func.name;
        block = Some block;
        message = Printf.sprintf "result of %%%d is never demanded" id })
    (Usedef.undemanded f)

let redundant_expr_findings (f : Func.t) : finding list =
  let avail = Available.of_func f in
  List.map
    (fun (block, id) ->
      { severity = Info;
        rule = "redundant-expr";
        func = f.Func.name;
        block = Some block;
        message =
          Printf.sprintf "%%%d recomputes an expression available on every path" id })
    (Available.redundant avail f)

let effects_findings (m : Modul.t) : finding list =
  let summary = Effects.summarize m in
  List.map
    (fun (func, attr, e) ->
      { severity = Error;
        rule = "attr-contradiction";
        func;
        block = None;
        message =
          Printf.sprintf "attribute %s contradicted by body (computed effect: %s)"
            attr (Effects.effect_to_string e) })
    (Effects.contradicted_attrs summary m)
  @ List.map
      (fun (func, e) ->
        { severity = Info;
          rule = "missing-purity-attr";
          func;
          block = None;
          message =
            Printf.sprintf "body is %s but carries no purity attribute"
              (Effects.effect_to_string e) })
      (Effects.missing_purity_attrs summary m)

let lint_module (m : Modul.t) : finding list =
  Obs.Span.with_ "posetrl.analysis.lint"
    ~attrs:[ ("module", Obs.Event.S m.Modul.name) ]
    (fun sp ->
      Obs.Metrics.inc (Obs.Metrics.counter "posetrl.analysis.lint.modules");
      let per_func =
        List.concat_map
          (fun f ->
            unreachable_findings f @ dead_store_findings f
            @ dead_code_findings f @ redundant_expr_findings f)
          (Modul.defined_funcs m)
      in
      let findings = verifier_findings m @ effects_findings m @ per_func in
      Obs.Metrics.inc
        ~by:(float_of_int (List.length findings))
        (Obs.Metrics.counter "posetrl.analysis.lint.findings");
      Obs.Span.set_attr sp "findings" (Obs.Event.I (List.length findings));
      (* stable order: severity first, then rule, then location *)
      List.stable_sort
        (fun a b ->
          let c = compare (severity_rank b.severity) (severity_rank a.severity) in
          if c <> 0 then c
          else
            let c = String.compare a.rule b.rule in
            if c <> 0 then c
            else
              let c = String.compare a.func b.func in
              if c <> 0 then c else compare a.block b.block)
        findings)

let count (sev : severity) (fs : finding list) : int =
  List.length (List.filter (fun f -> f.severity = sev) fs)

(* Does any finding reach severity [s]? *)
let reaches (s : severity) (fs : finding list) : bool =
  List.exists (fun f -> severity_rank f.severity >= severity_rank s) fs

let finding_to_json (f : finding) : Obs.Json.t =
  Obs.Json.Obj
    [ ("severity", Obs.Json.Str (severity_to_string f.severity));
      ("rule", Obs.Json.Str f.rule);
      ("func", Obs.Json.Str f.func);
      ("block",
       match f.block with Some b -> Obs.Json.Str b | None -> Obs.Json.Null);
      ("message", Obs.Json.Str f.message) ]

let to_json ~(name : string) (fs : finding list) : Obs.Json.t =
  Obs.Json.Obj
    [ ("kind", Obs.Json.Str "lint-report");
      ("module", Obs.Json.Str name);
      ("errors", Obs.Json.Int (count Error fs));
      ("warnings", Obs.Json.Int (count Warning fs));
      ("infos", Obs.Json.Int (count Info fs));
      ("findings", Obs.Json.Arr (List.map finding_to_json fs)) ]
