(* posetrl lint: static findings over a MiniIR module.

   Severity policy (what the CI gate keys on):
     - Error:   structural verifier failures, SSA dominance violations,
                purity attributes contradicted by the function body —
                each of these means a pass produced or would consume
                wrong IR.
     - Warning: dead stores, unreachable blocks, branches the value-range
                analysis proves constant (dead-branch) and blocks whose
                path conditions contradict (contradicted-range) — wasted
                size the pipeline should have cleaned up, but
                semantically fine.
     - Info:    dead pure code, recomputed available expressions, missing
                purity attributes, integer arithmetic that may wrap its
                type (possible-overflow) and same-block stores through
                pointers that may alias (may-alias-store-conflict) —
                optimisation opportunities and precision hazards.

   The bundled workload suite at -Oz must lint with zero errors; CI
   runs [posetrl lint --suite --fail-on error] to keep it that way. *)

open Posetrl_ir
module Obs = Posetrl_obs
module SSet = Set.Make (String)

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Result.Ok Error
  | "warning" -> Result.Ok Warning
  | "info" -> Result.Ok Info
  | s ->
    Result.Error (Printf.sprintf "unknown severity %S (error|warning|info)" s)

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

type finding = {
  severity : severity;
  rule : string;          (* stable kebab-case rule id *)
  func : string;
  block : string option;
  message : string;
}

let finding_to_string f =
  Printf.sprintf "%-7s %-22s %s%s: %s"
    (severity_to_string f.severity)
    f.rule
    f.func
    (match f.block with Some b -> "/" ^ b | None -> "")
    f.message

let verifier_findings (m : Modul.t) : finding list =
  let structural = Verifier.verify_module m in
  let with_dom = Verifier.verify_module ~dom:true m in
  let structural_keys =
    SSet.of_list (List.map Verifier.error_to_string structural)
  in
  let of_err rule (e : Verifier.error) =
    { severity = Error;
      rule;
      func = e.Verifier.func;
      block = e.Verifier.block;
      message = e.Verifier.message }
  in
  List.map (of_err "structural") structural
  @ List.filter_map
      (fun e ->
        if SSet.mem (Verifier.error_to_string e) structural_keys then None
        else Some (of_err "undominated-use" e))
      with_dom

let unreachable_findings (f : Func.t) : finding list =
  let cfg = Cfg.of_func f in
  let reach = Cfg.reachable cfg in
  List.filter_map
    (fun (b : Block.t) ->
      if Cfg.SSet.mem b.Block.label reach then None
      else
        Some
          { severity = Warning;
            rule = "unreachable-block";
            func = f.Func.name;
            block = Some b.Block.label;
            message = "block is unreachable from the entry" })
    f.Func.blocks

let dead_store_findings (f : Func.t) : finding list =
  List.map
    (fun (block, idx, reason) ->
      { severity = Warning;
        rule = "dead-store";
        func = f.Func.name;
        block = Some block;
        message = Printf.sprintf "store at index %d is dead: %s" idx reason })
    (Effects.dead_stores f)

let dead_code_findings (f : Func.t) : finding list =
  List.map
    (fun (block, id) ->
      { severity = Info;
        rule = "dead-code";
        func = f.Func.name;
        block = Some block;
        message = Printf.sprintf "result of %%%d is never demanded" id })
    (Usedef.undemanded f)

let redundant_expr_findings (f : Func.t) : finding list =
  let avail = Available.of_func f in
  List.map
    (fun (block, id) ->
      { severity = Info;
        rule = "redundant-expr";
        func = f.Func.name;
        block = Some block;
        message =
          Printf.sprintf "%%%d recomputes an expression available on every path" id })
    (Available.redundant avail f)

(* Abstract value of an operand at its use, from the at-def table (SSA:
   one def, so at-def and at-use agree up to edge refinement). *)
let operand_aval (ai : Absint.t) (v : Value.t) : Absint.aval =
  match v with
  | Value.Reg r -> Absint.val_of ai r
  | Value.Const (Value.Cint (_, k)) -> Absint.Range (k, k)
  | _ -> Absint.Top

let absint_findings (f : Func.t) : finding list =
  let ai = Absint.of_func f in
  let cfg = Cfg.of_func f in
  let cfg_reach = Cfg.reachable cfg in
  let entry_label = (Func.entry f).Block.label in
  let contradicted =
    List.filter_map
      (fun (b : Block.t) ->
        if
          Cfg.SSet.mem b.Block.label cfg_reach
          && (not (Absint.reachable ai b.Block.label))
          && not (String.equal b.Block.label entry_label)
        then
          Some
            { severity = Warning;
              rule = "contradicted-range";
              func = f.Func.name;
              block = Some b.Block.label;
              message =
                "value ranges prove the path conditions contradict: block \
                 cannot execute" }
        else None)
      f.Func.blocks
  in
  let dead_branch =
    List.filter_map
      (fun (b : Block.t) ->
        if not (Absint.reachable ai b.Block.label) then None
        else
          match b.Block.term with
          | Instr.Cbr (Value.Reg c, t, e) when not (String.equal t e) -> (
            match Absint.val_of ai c with
            | Absint.Range (k1, k2) when Int64.equal k1 k2 ->
              let always = not (Int64.equal k1 0L) in
              let dead = if always then e else t in
              Some
                { severity = Warning;
                  rule = "dead-branch";
                  func = f.Func.name;
                  block = Some b.Block.label;
                  message =
                    Printf.sprintf
                      "condition %%%d is always %b: the edge to %s is dead" c
                      always dead }
            | _ -> None)
          | _ -> None)
      f.Func.blocks
  in
  let overflow =
    List.concat_map
      (fun (b : Block.t) ->
        if not (Absint.reachable ai b.Block.label) then []
        else
          List.filter_map
            (fun (i : Instr.t) ->
              match i.Instr.op with
              | Instr.Binop (op, ty, x, y) ->
                let ax = operand_aval ai x and ay = operand_aval ai y in
                if Absint.may_overflow op ty ax ay then
                  Some
                    { severity = Info;
                      rule = "possible-overflow";
                      func = f.Func.name;
                      block = Some b.Block.label;
                      message =
                        Printf.sprintf
                          "%%%d: operands %s and %s may wrap %s" i.Instr.id
                          (Absint.aval_to_string ax)
                          (Absint.aval_to_string ay)
                          (Fmt.str "%a" Types.pp ty) }
                else None
              | _ -> None)
            b.Block.insns)
      f.Func.blocks
  in
  contradicted @ dead_branch @ overflow

(* Same-block stores through syntactically distinct pointers that the
   points-to facts cannot separate. Constant-index geps off the same base
   are provably disjoint and excluded; everything else is summarized as
   one finding per block so unrolled loops don't produce a quadratic
   flood of pairs. *)
let alias_findings (f : Func.t) : finding list =
  let fi = Alias.of_func f in
  let defs : (int, Instr.op) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) -> Hashtbl.replace defs i.Instr.id i.Instr.op)
        b.Block.insns)
    f.Func.blocks;
  (* (base, elt type, constant index) when [p] is a constant gep *)
  let const_gep = function
    | Value.Reg r -> (
      match Hashtbl.find_opt defs r with
      | Some (Instr.Gep (ty, base, Value.Const (Value.Cint (_, k)))) ->
        Some (base, ty, k)
      | _ -> None)
    | _ -> None
  in
  let provably_disjoint p q =
    match const_gep p, const_gep q with
    | Some (b1, t1, k1), Some (b2, t2, k2) ->
      Value.equal b1 b2 && Types.equal t1 t2 && not (Int64.equal k1 k2)
    | _ -> None <> None
  in
  List.filter_map
    (fun (b : Block.t) ->
      let stores =
        List.filter_map
          (fun (i : Instr.t) ->
            match i.Instr.op with
            | Instr.Store (_, _, p) -> Some p
            | _ -> None)
          b.Block.insns
      in
      let count = ref 0 in
      let example = ref None in
      let rec scan = function
        | [] -> ()
        | p :: rest ->
          List.iter
            (fun q ->
              if
                (not (Value.equal p q))
                && (not (provably_disjoint p q))
                && Alias.may_alias fi p q
              then begin
                incr count;
                if !example = None then example := Some (p, q)
              end)
            rest;
          scan rest
      in
      scan stores;
      match !example with
      | None -> None
      | Some (p, q) ->
        Some
          { severity = Info;
            rule = "may-alias-store-conflict";
            func = f.Func.name;
            block = Some b.Block.label;
            message =
              Fmt.str
                "%d store pair%s may alias (e.g. %a vs %a): their order \
                 constrains dse/licm/gvn"
                !count
                (if !count = 1 then "" else "s")
                Printer.pp_value p Printer.pp_value q })
    f.Func.blocks

let effects_findings (m : Modul.t) : finding list =
  let summary = Effects.summarize m in
  List.map
    (fun (func, attr, e) ->
      { severity = Error;
        rule = "attr-contradiction";
        func;
        block = None;
        message =
          Printf.sprintf "attribute %s contradicted by body (computed effect: %s)"
            attr (Effects.effect_to_string e) })
    (Effects.contradicted_attrs summary m)
  @ List.map
      (fun (func, e) ->
        { severity = Info;
          rule = "missing-purity-attr";
          func;
          block = None;
          message =
            Printf.sprintf "body is %s but carries no purity attribute"
              (Effects.effect_to_string e) })
      (Effects.missing_purity_attrs summary m)

let lint_module (m : Modul.t) : finding list =
  Obs.Span.with_ "posetrl.analysis.lint"
    ~attrs:[ ("module", Obs.Event.S m.Modul.name) ]
    (fun sp ->
      Obs.Metrics.inc (Obs.Metrics.counter "posetrl.analysis.lint.modules");
      let per_func =
        List.concat_map
          (fun f ->
            unreachable_findings f @ dead_store_findings f
            @ dead_code_findings f @ redundant_expr_findings f
            @ absint_findings f @ alias_findings f)
          (Modul.defined_funcs m)
      in
      let findings = verifier_findings m @ effects_findings m @ per_func in
      Obs.Metrics.inc
        ~by:(float_of_int (List.length findings))
        (Obs.Metrics.counter "posetrl.analysis.lint.findings");
      Obs.Span.set_attr sp "findings" (Obs.Event.I (List.length findings));
      (* stable order: severity first, then rule, then location *)
      List.stable_sort
        (fun a b ->
          let c = compare (severity_rank b.severity) (severity_rank a.severity) in
          if c <> 0 then c
          else
            let c = String.compare a.rule b.rule in
            if c <> 0 then c
            else
              let c = String.compare a.func b.func in
              if c <> 0 then c else compare a.block b.block)
        findings)

let count (sev : severity) (fs : finding list) : int =
  List.length (List.filter (fun f -> f.severity = sev) fs)

(* Does any finding reach severity [s]? *)
let reaches (s : severity) (fs : finding list) : bool =
  List.exists (fun f -> severity_rank f.severity >= severity_rank s) fs

let finding_to_json (f : finding) : Obs.Json.t =
  Obs.Json.Obj
    [ ("severity", Obs.Json.Str (severity_to_string f.severity));
      ("rule", Obs.Json.Str f.rule);
      ("func", Obs.Json.Str f.func);
      ("block",
       match f.block with Some b -> Obs.Json.Str b | None -> Obs.Json.Null);
      ("message", Obs.Json.Str f.message) ]

let to_json ~(name : string) (fs : finding list) : Obs.Json.t =
  Obs.Json.Obj
    [ ("kind", Obs.Json.Str "lint-report");
      ("module", Obs.Json.Str name);
      ("errors", Obs.Json.Int (count Error fs));
      ("warnings", Obs.Json.Int (count Warning fs));
      ("infos", Obs.Json.Int (count Info fs));
      ("findings", Obs.Json.Arr (List.map finding_to_json fs)) ]
