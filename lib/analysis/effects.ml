(* Memory-effect and call-purity summaries, plus the pointer-escape
   helpers dead-store elimination consumes.

   Summaries form a three-point chain Pure < ReadOnly < ReadWrite and
   are computed by a fixpoint over the direct call graph: a function's
   effect is the join of its instructions' effects, with calls resolved
   through the current summary table. Declarations contribute what their
   attributes promise ([readnone] / [readonly]) and ReadWrite otherwise;
   indirect calls are always ReadWrite. Effects only grow toward
   ReadWrite, so the fixpoint terminates in at most 2*|funcs| rounds.

   All state lives in the summary value returned to the caller — nothing
   global — so summaries can be computed concurrently across domains. *)

open Posetrl_ir
module ISet = Set.Make (Int)
module SMap = Map.Make (String)

type effect_kind = Pure | ReadOnly | ReadWrite

let effect_to_string = function
  | Pure -> "pure"
  | ReadOnly -> "readonly"
  | ReadWrite -> "readwrite"

let join_effect a b =
  match a, b with
  | ReadWrite, _ | _, ReadWrite -> ReadWrite
  | ReadOnly, _ | _, ReadOnly -> ReadOnly
  | Pure, Pure -> Pure

type t = { summaries : effect_kind SMap.t }

let declared_effect (f : Func.t) : effect_kind =
  if Func.has_attr Attrs.readnone f then Pure
  else if Func.has_attr Attrs.readonly f then ReadOnly
  else ReadWrite

(* Effect of one instruction under the summary table [tbl]. *)
let insn_effect (tbl : effect_kind SMap.t) (op : Instr.op) : effect_kind =
  match op with
  | Instr.Call (_, callee, _) ->
    Option.value (SMap.find_opt callee tbl) ~default:ReadWrite
  | Instr.Callind _ -> ReadWrite
  | Instr.Memcpy _ | Instr.Store _ -> ReadWrite
  | Instr.Load _ -> ReadOnly
  | Instr.Intrinsic (name, _, _) ->
    (match name with
     | "assume" | "lifetime.start" | "lifetime.end" | "expect" -> Pure
     | _ -> ReadWrite)
  | _ -> Pure

let func_effect (tbl : effect_kind SMap.t) (f : Func.t) : effect_kind =
  Func.fold_insns
    (fun acc _ i -> join_effect acc (insn_effect tbl i.Instr.op))
    Pure f

let summarize (m : Modul.t) : t =
  let init =
    List.fold_left
      (fun tbl (f : Func.t) ->
        let e = if Func.is_declaration f then declared_effect f else Pure in
        SMap.add f.Func.name e tbl)
      SMap.empty m.Modul.funcs
  in
  let defined = Modul.defined_funcs m in
  let rec fix tbl round =
    (* effects only grow along a 3-point chain, so 2*|funcs|+1 rounds
       always suffice; the bound is a belt against future edits *)
    if round > (2 * List.length m.Modul.funcs) + 1 then tbl
    else
      let changed = ref false in
      let tbl' =
        List.fold_left
          (fun tbl (f : Func.t) ->
            let cur = Option.value (SMap.find_opt f.Func.name tbl) ~default:Pure in
            let e = join_effect cur (func_effect tbl f) in
            if e <> cur then changed := true;
            SMap.add f.Func.name e tbl)
          tbl defined
      in
      if !changed then fix tbl' (round + 1) else tbl'
  in
  { summaries = fix init 0 }

let effect_of (t : t) name =
  Option.value (SMap.find_opt name t.summaries) ~default:ReadWrite

let is_pure_call (t : t) name = effect_of t name = Pure

(* Defined functions whose computed summary is strictly better than what
   their attributes claim — candidates for a purity annotation. *)
let missing_purity_attrs (t : t) (m : Modul.t) : (string * effect_kind) list =
  List.filter_map
    (fun (f : Func.t) ->
      match effect_of t f.Func.name with
      | Pure when not (Func.has_attr Attrs.readnone f) ->
        Some (f.Func.name, Pure)
      | ReadOnly
        when not (Func.has_attr Attrs.readonly f)
             && not (Func.has_attr Attrs.readnone f) ->
        Some (f.Func.name, ReadOnly)
      | _ -> None)
    (Modul.defined_funcs m)

(* Defined functions carrying an attribute their body contradicts, e.g.
   [readnone] on a function that stores. A pass that infers attributes
   incorrectly shows up here before it miscompiles anything. *)
let contradicted_attrs (t : t) (m : Modul.t) : (string * string * effect_kind) list =
  List.concat_map
    (fun (f : Func.t) ->
      let e = effect_of t f.Func.name in
      let bad attr limit =
        if Func.has_attr attr f && join_effect e limit <> limit then
          [ (f.Func.name, attr, e) ]
        else []
      in
      bad Attrs.readnone Pure @ bad Attrs.readonly ReadOnly)
    (Modul.defined_funcs m)

(* --- pointer-escape helpers (shared with the dse pass) ------------------- *)

(* Allocas that never escape the function: used only as load sources,
   store destinations, or gep bases — never stored as a value, passed to
   a call, returned, or fed to a gep as base/index. The traversal below
   is the exact classification dse has always used. *)
let private_allocas (f : Func.t) : ISet.t =
  let allocas =
    Func.fold_insns
      (fun acc _ i ->
        match i.Instr.op with Instr.Alloca _ -> ISet.add i.Instr.id acc | _ -> acc)
      ISet.empty f
  in
  let escaped = ref ISet.empty in
  let check v =
    match v with
    | Value.Reg r when ISet.mem r allocas -> escaped := ISet.add r !escaped
    | _ -> ()
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Load (_, _) -> ()
          | Instr.Store (_, v, _) -> check v
          | Instr.Gep (_, base, idx) -> check base; check idx
          | op -> List.iter check (Instr.operands op))
        b.Block.insns;
      List.iter check (Instr.term_operands b.Block.term))
    f.Func.blocks;
  ISet.diff allocas !escaped

(* Registers read through directly anywhere in [f]: [loaded] collects
   load/memcpy sources, [gep_based] gep bases (a gep on a private alloca
   is treated as a read barrier by dse). *)
let read_roots (f : Func.t) : ISet.t * ISet.t =
  let loaded = ref ISet.empty in
  let gep_based = ref ISet.empty in
  Func.iter_insns
    (fun _ i ->
      match i.Instr.op with
      | Instr.Load (_, Value.Reg r) -> loaded := ISet.add r !loaded
      | Instr.Gep (_, Value.Reg r, _) -> gep_based := ISet.add r !gep_based
      | Instr.Memcpy (_, Value.Reg r, _) -> loaded := ISet.add r !loaded
      | _ -> ())
    f;
  (!loaded, !gep_based)

(* Indices (within [b.insns]) of stores overwritten by a later store to
   the same pointer in the same block with no intervening read, call or
   memcpy — the same forward scan dse performs. *)
let overwritten_store_indices (b : Block.t) : (int, unit) Hashtbl.t =
  let pending : (Value.t, int ref) Hashtbl.t = Hashtbl.create 8 in
  let dead : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun idx (i : Instr.t) ->
      match i.Instr.op with
      | Instr.Store (_, _, p) ->
        (match Hashtbl.find_opt pending p with
         | Some prev -> Hashtbl.replace dead !prev ()
         | None -> ());
        Hashtbl.replace pending p (ref idx)
      | Instr.Load _ | Instr.Call _ | Instr.Callind _ | Instr.Memcpy _ ->
        Hashtbl.reset pending
      | _ -> ())
    b.Block.insns;
  dead

(* Dead-store findings for lint: (block, insn index, reason). *)
let dead_stores (f : Func.t) : (string * int * string) list =
  let priv = private_allocas f in
  let loaded, gep_based = read_roots f in
  let never_read r =
    ISet.mem r priv && (not (ISet.mem r loaded)) && not (ISet.mem r gep_based)
  in
  List.concat_map
    (fun (b : Block.t) ->
      let overwritten = overwritten_store_indices b in
      List.concat
        (List.mapi
           (fun idx (i : Instr.t) ->
             if Hashtbl.mem overwritten idx then
               [ (b.Block.label, idx, "overwritten before any read") ]
             else
               match i.Instr.op with
               | Instr.Store (_, _, Value.Reg r) when never_read r ->
                 [ (b.Block.label, idx, "private alloca never read") ]
               | _ -> [])
           b.Block.insns))
    f.Func.blocks
