(* Static IR lint: turns the analyses (verifier, liveness, use-def,
   available expressions, effects, points-to, value ranges) into a
   structured findings report for `posetrl lint`.

   Severity policy (what the CI gate keys on):
     - Error:   structural verifier failures, SSA dominance violations,
                purity attributes contradicted by the function body.
     - Warning: dead stores, unreachable blocks, branches the
                value-range analysis proves constant (dead-branch) and
                blocks whose path conditions contradict
                (contradicted-range).
     - Info:    dead pure code, recomputed available expressions,
                missing purity attributes, arithmetic that may wrap its
                type (possible-overflow) and same-block stores through
                pointers that may alias (may-alias-store-conflict). *)

open Posetrl_ir

type severity = Error | Warning | Info

val severity_to_string : severity -> string
val severity_of_string : string -> (severity, string) result
val severity_rank : severity -> int

type finding = {
  severity : severity;
  rule : string;          (* stable kebab-case rule name *)
  func : string;
  block : string option;
  message : string;
}

val finding_to_string : finding -> string

(* Individual rule groups, exposed for targeted testing. *)
val verifier_findings : Modul.t -> finding list
val unreachable_findings : Func.t -> finding list
val dead_store_findings : Func.t -> finding list
val dead_code_findings : Func.t -> finding list
val redundant_expr_findings : Func.t -> finding list
val absint_findings : Func.t -> finding list
val alias_findings : Func.t -> finding list
val effects_findings : Modul.t -> finding list

(* All rules over every defined function, sorted by severity
   (descending), rule, function and block for a stable report. *)
val lint_module : Modul.t -> finding list

val count : severity -> finding list -> int

(* Does any finding reach severity [s] or higher? The `--fail-on`
   gate. *)
val reaches : severity -> finding list -> bool

val finding_to_json : finding -> Posetrl_obs.Json.t
val to_json : name:string -> finding list -> Posetrl_obs.Json.t
