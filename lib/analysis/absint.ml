(* Abstract interpretation over an interval × constancy × nullness
   product domain, instantiating the generic [Dataflow.Make] solver.

   Each SSA register is mapped to an abstract value:
     - [Range (lo, hi)]  — an integer in the inclusive interval (a
                           constant is the degenerate [Range (k, k)])
     - [Fconst f]        — a known float constant
     - [PNull]/[PNonNull]/[PAny] — pointer nullness
     - [Top]             — anything; [Bot] — no value observed yet.

   The interval lattice has unbounded ascending chains, so the transfer
   function widens a block's output against its previous output once the
   block has been visited more than [widen_budget] times: any bound still
   moving is blown to the int64 extreme, after which facts can change
   only finitely often and the worklist drains well inside the solver's
   non-monotonicity budget.

   Branch conditions are refined per edge with the solver's [~edge] hook:
   on the true edge of [cbr (icmp slt x y)] the interval of [x] is met
   with (-inf, hi(y)-1] and symmetrically for [y]; switch case edges pin
   the scrutinee into the hull of that label's case keys. A refinement
   that empties an interval proves the edge infeasible and propagates
   [Unreached] — which is exactly what the dead-branch lint rule reads
   back out. Phi inputs are also bound on the incoming edge, so a phi's
   entry fact is the join of its incoming abstract values. *)

open Posetrl_ir
module Obs = Posetrl_obs
module IMap = Map.Make (Int)
module SMap = Map.Make (String)

type aval =
  | Bot
  | Range of int64 * int64
  | Fconst of float
  | PNull
  | PNonNull
  | PAny
  | Top

let aval_to_string = function
  | Bot -> "bot"
  | Range (lo, hi) ->
    if Int64.equal lo hi then Printf.sprintf "const %Ld" lo
    else Printf.sprintf "[%Ld, %Ld]" lo hi
  | Fconst f -> Printf.sprintf "fconst %h" f
  | PNull -> "null"
  | PNonNull -> "nonnull"
  | PAny -> "ptr"
  | Top -> "top"

let aval_equal (a : aval) (b : aval) = Stdlib.compare a b = 0

let join_aval a b =
  match a, b with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Range (al, ah), Range (bl, bh) -> Range (min al bl, max ah bh)
  | Fconst x, Fconst y -> if Stdlib.compare x y = 0 then a else Top
  | PNull, PNull -> PNull
  | PNonNull, PNonNull -> PNonNull
  | (PNull | PNonNull | PAny), (PNull | PNonNull | PAny) -> PAny
  | _ -> Top

(* Does the abstract value admit the concrete integer [v]? Used by the
   soundness property against the interpreter. *)
let contains_int (a : aval) (v : int64) : bool =
  match a with
  | Bot -> false
  | Range (lo, hi) -> Int64.compare lo v <= 0 && Int64.compare v hi <= 0
  | Fconst _ -> false
  | PNull -> Int64.equal v 0L
  | PNonNull -> not (Int64.equal v 0L)
  | PAny | Top -> true

(* --- type-based defaults -------------------------------------------------- *)

let type_bounds (ty : Types.t) : (int64 * int64) option =
  match ty with
  | Types.I1 -> Some (0L, 1L)
  | Types.I8 -> Some (-128L, 127L)
  | Types.I32 -> Some (Int64.of_int32 Int32.min_int, Int64.of_int32 Int32.max_int)
  | Types.I64 -> Some (Int64.min_int, Int64.max_int)
  | _ -> None

let type_default (ty : Types.t) : aval =
  match ty with
  | Types.I1 | Types.I8 | Types.I32 | Types.I64 ->
    (match type_bounds ty with Some (lo, hi) -> Range (lo, hi) | None -> Top)
  | Types.Ptr -> PAny
  | Types.Void -> Bot
  | Types.F64 | Types.Vec _ -> Top

(* [Range (lo, hi)] when the unwrapped interval fits the type, otherwise
   the full type range (wrap semantics: Types.wrap can land anywhere). *)
let clamp (ty : Types.t) (lo : int64) (hi : int64) : aval =
  match type_bounds ty with
  | None -> Top
  | Some (tl, th) ->
    if Int64.compare lo tl >= 0 && Int64.compare hi th <= 0 then Range (lo, hi)
    else Range (tl, th)

(* --- overflow-checked int64 endpoint arithmetic --------------------------- *)

let add_ck a b =
  let s = Int64.add a b in
  let sign v = Int64.compare v 0L >= 0 in
  if sign a = sign b && sign s <> sign a then None else Some s

let neg_ck a = if Int64.equal a Int64.min_int then None else Some (Int64.neg a)

let sub_ck a b =
  match neg_ck b with None -> None | Some nb -> add_ck a nb

let mul_ck a b =
  if Int64.equal a 0L || Int64.equal b 0L then Some 0L
  else if
    (Int64.equal a (-1L) && Int64.equal b Int64.min_int)
    || (Int64.equal b (-1L) && Int64.equal a Int64.min_int)
  then None
  else
    let p = Int64.mul a b in
    if Int64.equal (Int64.div p a) b then Some p else None

(* Endpoint-combination rule: sound for operations monotone in each
   argument and for bilinear ones (mul) whose extrema sit at corners. *)
let corners f (al, ah) (bl, bh) : (int64 * int64) option =
  match f al bl, f al bh, f ah bl, f ah bh with
  | Some a, Some b, Some c, Some d ->
    Some (min (min a b) (min c d), max (max a b) (max c d))
  | _ -> None

(* --- abstract evaluation -------------------------------------------------- *)

(* smallest all-ones mask covering [v] (v >= 0) *)
let ceil_mask (v : int64) : int64 =
  let m = ref 1L in
  while Int64.compare !m v < 0 do
    m := Int64.add (Int64.mul !m 2L) 1L
  done;
  !m

let eval_binop_aval (b : Instr.binop) (ty : Types.t) (x : aval) (y : aval) :
    aval =
  let default = type_default ty in
  match b, x, y with
  | (Instr.Fadd | Instr.Fsub | Instr.Fmul | Instr.Fdiv), Fconst a, Fconst c ->
    (match Fold.eval_fbinop b a c with Some r -> Fconst r | None -> Top)
  | (Instr.Fadd | Instr.Fsub | Instr.Fmul | Instr.Fdiv), _, _ -> Top
  | _, Range (al, ah), Range (bl, bh) when Types.is_integer ty -> (
    let rx = (al, ah) and ry = (bl, bh) in
    match b with
    | Instr.Add -> (
      match corners add_ck rx ry with
      | Some (lo, hi) -> clamp ty lo hi
      | None -> default)
    | Instr.Sub -> (
      match corners sub_ck rx ry with
      | Some (lo, hi) -> clamp ty lo hi
      | None -> default)
    | Instr.Mul -> (
      match corners mul_ck rx ry with
      | Some (lo, hi) -> clamp ty lo hi
      | None -> default)
    | Instr.And ->
      if Int64.equal bl bh && Int64.compare bl 0L >= 0 then Range (0L, bl)
      else if Int64.equal al ah && Int64.compare al 0L >= 0 then Range (0L, al)
      else if Int64.compare al 0L >= 0 && Int64.compare bl 0L >= 0 then
        Range (0L, min ah bh)
      else default
    | Instr.Or | Instr.Xor ->
      if Int64.compare al 0L >= 0 && Int64.compare bl 0L >= 0 then
        Range (0L, ceil_mask (max ah bh))
      else default
    | Instr.Shl when Int64.equal bl bh && Int64.compare bl 0L >= 0
                     && Int64.compare bl 63L <= 0 -> (
      let k = Int64.to_int bl in
      let f a () = mul_ck a (Int64.shift_left 1L k) in
      match f al (), f ah () with
      | Some lo, Some hi -> clamp ty (min lo hi) (max lo hi)
      | _ -> default)
    | Instr.Lshr when Int64.equal bl bh && Int64.compare bl 0L > 0
                      && Int64.compare bl 63L <= 0 ->
      let k = Int64.to_int bl in
      if Int64.compare al 0L >= 0 then
        Range (Int64.shift_right_logical al k, Int64.shift_right_logical ah k)
      else Range (0L, Int64.shift_right_logical Int64.minus_one k)
    | Instr.Ashr when Int64.equal bl bh && Int64.compare bl 0L >= 0
                      && Int64.compare bl 63L <= 0 ->
      let k = Int64.to_int bl in
      Range (Int64.shift_right al k, Int64.shift_right ah k)
    | Instr.Sdiv when Int64.equal bl bh && not (Int64.equal bl 0L) ->
      if Int64.equal bl (-1L) && Int64.equal al Int64.min_int then default
      else
        let q1 = Int64.div al bl and q2 = Int64.div ah bl in
        Range (min q1 q2, max q1 q2)
    | Instr.Srem when Int64.equal bl bh && not (Int64.equal bl 0L) ->
      let a = Int64.sub (Int64.abs bl) 1L in
      if Int64.compare (Int64.abs bl) 0L < 0 then default (* |min_int| *)
      else if Int64.compare al 0L >= 0 then Range (0L, min ah a)
      else Range (Int64.neg a, a)
    | Instr.Udiv when Int64.equal bl bh && Int64.compare bl 0L > 0
                      && Int64.compare al 0L >= 0 ->
      Range (Int64.div al bl, Int64.div ah bl)
    | Instr.Urem when Int64.equal bl bh && Int64.compare bl 0L > 0 ->
      let hi = Int64.sub bl 1L in
      if Int64.compare al 0L >= 0 then Range (0L, min ah hi)
      else Range (0L, hi)
    | _ -> default)
  | _ -> default

(* May [x b y] wrap around the type's bounds? Only meaningful when both
   operand intervals are strictly narrower than the full type range —
   otherwise every unconstrained operation would flag. Drives the
   possible-overflow lint rule. *)
let may_overflow (b : Instr.binop) (ty : Types.t) (x : aval) (y : aval) : bool =
  match type_bounds ty, x, y with
  | Some (tl, th), Range (al, ah), Range (bl, bh) ->
    let full (lo, hi) = Int64.equal lo tl && Int64.equal hi th in
    if full (al, ah) || full (bl, bh) then false
    else (
      match
        match b with
        | Instr.Add -> Some add_ck
        | Instr.Sub -> Some sub_ck
        | Instr.Mul -> Some mul_ck
        | _ -> None
      with
      | None -> false
      | Some f -> (
        match corners f (al, ah) (bl, bh) with
        | None -> true (* int64 overflow at an endpoint *)
        | Some (lo, hi) -> Int64.compare lo tl < 0 || Int64.compare hi th > 0))
  | _ -> false

let rec icmp_ranges (p : Instr.icmp) (al, ah) (bl, bh) : bool option =
  let lt a b = Int64.compare a b < 0 in
  let le a b = Int64.compare a b <= 0 in
  let nonneg = Int64.compare al 0L >= 0 && Int64.compare bl 0L >= 0 in
  let rec decide p =
    match p with
    | Instr.Eq ->
      if Int64.equal al ah && Int64.equal bl bh && Int64.equal al bl then
        Some true
      else if lt ah bl || lt bh al then Some false
      else None
    | Instr.Ne -> Option.map not (decide Instr.Eq)
    | Instr.Slt ->
      if lt ah bl then Some true else if le bh al then Some false else None
    | Instr.Sle ->
      if le ah bl then Some true else if lt bh al then Some false else None
    | Instr.Sgt -> decide_swapped Instr.Slt
    | Instr.Sge -> decide_swapped Instr.Sle
    | Instr.Ult -> if nonneg then decide Instr.Slt else None
    | Instr.Ule -> if nonneg then decide Instr.Sle else None
    | Instr.Ugt -> if nonneg then decide Instr.Sgt else None
    | Instr.Uge -> if nonneg then decide Instr.Sge else None
  and decide_swapped p =
    match icmp_ranges p (bl, bh) (al, ah) with
    | Some b -> Some b
    | None -> None
  in
  decide p

let eval_icmp_aval (p : Instr.icmp) (x : aval) (y : aval) : aval =
  match x, y with
  | Range (al, ah), Range (bl, bh) -> (
    match icmp_ranges p (al, ah) (bl, bh) with
    | Some true -> Range (1L, 1L)
    | Some false -> Range (0L, 0L)
    | None -> Range (0L, 1L))
  | PNull, PNull -> (
    match p with
    | Instr.Eq | Instr.Ule | Instr.Uge | Instr.Sle | Instr.Sge -> Range (1L, 1L)
    | Instr.Ne | Instr.Ult | Instr.Ugt | Instr.Slt | Instr.Sgt -> Range (0L, 0L))
  | PNull, PNonNull | PNonNull, PNull -> (
    match p with
    | Instr.Eq -> Range (0L, 0L)
    | Instr.Ne -> Range (1L, 1L)
    | _ -> Range (0L, 1L))
  | _ -> Range (0L, 1L)

(* --- the environment lattice ---------------------------------------------- *)

type env = Unreached | Env of aval IMap.t

module L = struct
  type t = env

  let bottom = Unreached

  let equal a b =
    match a, b with
    | Unreached, Unreached -> true
    | Env x, Env y -> IMap.equal aval_equal x y
    | _ -> false

  let join a b =
    match a, b with
    | Unreached, x | x, Unreached -> x
    | Env x, Env y ->
      Env
        (IMap.union (fun _ va vb -> Some (join_aval va vb)) x y)
end

module Solver = Dataflow.Make (L)

let find_aval (e : aval IMap.t) (r : int) : aval =
  Option.value (IMap.find_opt r e) ~default:Bot

let eval_value (e : aval IMap.t) (v : Value.t) : aval =
  match v with
  | Value.Const (Value.Cint (_, k)) -> Range (k, k)
  | Value.Const (Value.Cfloat f) -> Fconst f
  | Value.Const Value.Cnull -> PNull
  | Value.Const (Value.Cundef _) -> Top
  | Value.Global _ -> PNonNull
  | Value.Reg r -> find_aval e r

let eval_op (e : aval IMap.t) (op : Instr.op) : aval =
  (* strictness: an operand with no value yet means this program point
     has not been reached along any analyzed path *)
  let strict_bot =
    List.exists
      (fun v -> match v with Value.Reg r -> find_aval e r = Bot | _ -> false)
      (Instr.operands op)
  in
  if strict_bot then Bot
  else
    match op with
    | Instr.Binop (b, ty, x, y) ->
      if Types.is_vector ty then Top
      else eval_binop_aval b ty (eval_value e x) (eval_value e y)
    | Instr.Icmp (p, _, x, y) -> eval_icmp_aval p (eval_value e x) (eval_value e y)
    | Instr.Fcmp (p, x, y) -> (
      match eval_value e x, eval_value e y with
      | Fconst a, Fconst b ->
        if Fold.eval_fcmp p a b then Range (1L, 1L) else Range (0L, 0L)
      | _ -> Range (0L, 1L))
    | Instr.Select (_, c, a, b) -> (
      match eval_value e c with
      | Range (1L, 1L) -> eval_value e a
      | Range (0L, 0L) -> eval_value e b
      | Bot -> Bot
      | _ -> join_aval (eval_value e a) (eval_value e b))
    | Instr.Cast (cop, from_ty, to_ty, v) -> (
      let av = eval_value e v in
      match cop, av with
      | Instr.Trunc, Range (lo, hi) -> clamp to_ty lo hi
      | Instr.Sext, Range (lo, hi) -> clamp to_ty lo hi
      | Instr.Zext, Range (lo, hi) ->
        if Int64.compare lo 0L >= 0 then clamp to_ty lo hi
        else
          let w = Types.bit_width from_ty in
          if w >= 64 then type_default to_ty
          else clamp to_ty 0L (Int64.sub (Int64.shift_left 1L w) 1L)
      | Instr.Bitcast, _
        when Types.equal from_ty Types.Ptr && Types.equal to_ty Types.Ptr ->
        av
      | Instr.Sitofp, Range (lo, hi) when Int64.equal lo hi ->
        Fconst (Int64.to_float lo)
      | Instr.Fptosi, Fconst f ->
        if Float.is_nan f then Top
        else
          let k = Types.wrap (Types.elt_type to_ty) (Int64.of_float f) in
          Range (k, k)
      | _ -> type_default to_ty)
    | Instr.Alloca _ -> PNonNull
    | Instr.Gep _ -> PAny
    | Instr.Load (ty, _) -> type_default ty
    | Instr.Expect (_, v, _) -> eval_value e v
    | Instr.Phi _ -> Bot (* bound on incoming edges; never re-evaluated here *)
    | op -> type_default (Instr.result_ty op)

(* straight-line transfer of one block: phis keep their edge-joined
   binding, every other instruction binds its abstract result *)
let transfer_block (b : Block.t) (fact : env) : env =
  match fact with
  | Unreached -> Unreached
  | Env e ->
    Env
      (List.fold_left
         (fun e (i : Instr.t) ->
           if i.Instr.id < 0 then e
           else
             match i.Instr.op with
             | Instr.Phi _ -> e
             | op -> IMap.add i.Instr.id (eval_op e op) e)
         e b.Block.insns)

(* --- edge refinement ------------------------------------------------------ *)

let meet_range (al, ah) (bl, bh) : (int64 * int64) option =
  let lo = max al bl and hi = min ah bh in
  if Int64.compare lo hi <= 0 then Some (lo, hi) else None

(* Refine [e] under the assumption that [icmp p x y] evaluates to
   [truth]. Returns None when the assumption is infeasible. *)
let assume_icmp (e : aval IMap.t) (p : Instr.icmp) (x : Value.t) (y : Value.t)
    (truth : bool) : aval IMap.t option =
  let p = if truth then p else Instr.negate_icmp p in
  let bind v av e =
    match v with Value.Reg r -> IMap.add r av e | _ -> e
  in
  let vx = eval_value e x and vy = eval_value e y in
  match vx, vy with
  | Range (al, ah), Range (bl, bh) -> (
    let rx = (al, ah) and ry = (bl, bh) in
    let nonneg = Int64.compare al 0L >= 0 && Int64.compare bl 0L >= 0 in
    let constrain p =
      (* interval each side must fall in for [x p y] to hold *)
      match p with
      | Instr.Eq -> Some (ry, rx)
      | Instr.Ne ->
        (* only sharpens against a constant: shave a matching endpoint;
           two equal constants make the edge infeasible *)
        let shave (lo, hi) (kl, kh) =
          if Int64.equal kl kh then
            if Int64.equal lo kl && Int64.equal hi kl then None
            else if Int64.equal lo kl then Some (Int64.add lo 1L, hi)
            else if Int64.equal hi kl then Some (lo, Int64.sub hi 1L)
            else Some (lo, hi)
          else Some (lo, hi)
        in
        (match shave rx ry, shave ry rx with
         | Some rx', Some ry' -> Some (rx', ry')
         | _ -> None)
      | Instr.Slt ->
        if Int64.equal bh Int64.min_int then None
        else Some ((Int64.min_int, Int64.sub bh 1L),
                   (Int64.add al 1L, Int64.max_int))
      | Instr.Sle -> Some ((Int64.min_int, bh), (al, Int64.max_int))
      | Instr.Sgt ->
        if Int64.equal bl Int64.max_int then None
        else Some ((Int64.add bl 1L, Int64.max_int),
                   (Int64.min_int, Int64.sub ah 1L))
      | Instr.Sge -> Some ((bl, Int64.max_int), (Int64.min_int, ah))
      | Instr.Ult when nonneg ->
        if Int64.equal bh Int64.min_int then None
        else Some ((0L, Int64.sub bh 1L), (Int64.add al 1L, Int64.max_int))
      | Instr.Ule when nonneg -> Some ((0L, bh), (al, Int64.max_int))
      | Instr.Ugt when nonneg ->
        Some ((Int64.add bl 1L, Int64.max_int), (0L, Int64.sub ah 1L))
      | Instr.Uge when nonneg -> Some ((bl, Int64.max_int), (0L, ah))
      | _ -> Some ((Int64.min_int, Int64.max_int), (Int64.min_int, Int64.max_int))
    in
    match constrain p with
    | None -> None
    | Some (x_window, y_window) -> (
      match meet_range rx x_window, meet_range ry y_window with
      | Some (xl, xh), Some (yl, yh) ->
        Some (bind x (Range (xl, xh)) (bind y (Range (yl, yh)) e))
      | _ -> None))
  | (PNull | PNonNull | PAny), (PNull | PNonNull | PAny) -> (
    let null_side v other =
      (* x compared against a known-null other *)
      match p with
      | Instr.Eq -> (
        match eval_value e v with
        | PNonNull -> None
        | _ -> Some (bind v PNull e))
      | Instr.Ne -> (
        match eval_value e v with
        | PNull -> None
        | _ -> Some (bind v PNonNull e))
      | _ -> ignore other; Some e
    in
    match vx, vy with
    | _, PNull -> null_side x vy
    | PNull, _ -> null_side y vx
    | _ -> Some e)
  | _ -> Some e

(* Refinement along the CFG edge pred -> succ: constrain by pred's
   branch condition, then bind succ's phis to their incoming values. *)
let refine_edge ~(defs : (int, string * Instr.t) Hashtbl.t)
    ~(block_map : Block.t Func.SMap.t) ~(pred : string) ~(succ : string)
    (fact : env) : env =
  match fact with
  | Unreached -> Unreached
  | Env e -> (
    let pred_blk = Func.SMap.find_opt pred block_map in
    let refined =
      match pred_blk with
      | None -> Some e
      | Some pb -> (
        match pb.Block.term with
        | Instr.Cbr (Value.Reg c, t, f) when not (String.equal t f) -> (
          let truth = String.equal succ t in
          let e = IMap.add c (Range ((if truth then 1L else 0L),
                                     if truth then 1L else 0L)) e in
          match Hashtbl.find_opt defs c with
          | Some (_, { Instr.op = Instr.Icmp (p, ty, x, y); _ })
            when not (Types.is_vector ty) ->
            assume_icmp e p x y truth
          | _ -> Some e)
        | Instr.Switch (_, v, cases, d) -> (
          if String.equal succ d then Some e
          else
            let keys =
              List.filter_map
                (fun (k, l) -> if String.equal l succ then Some k else None)
                cases
            in
            match keys, v with
            | [], _ -> Some e
            | k :: ks, Value.Reg r -> (
              let lo = List.fold_left min k ks and hi = List.fold_left max k ks in
              match find_aval e r with
              | Range (rl, rh) -> (
                match meet_range (rl, rh) (lo, hi) with
                | Some (ml, mh) -> Some (IMap.add r (Range (ml, mh)) e)
                | None -> None)
              | _ -> Some (IMap.add r (Range (lo, hi)) e))
            | _ -> Some e)
        | _ -> Some e)
    in
    match refined with
    | None -> Unreached
    | Some e -> (
      (* bind succ's phis to the value flowing in from pred *)
      match Func.SMap.find_opt succ block_map with
      | None -> Env e
      | Some sb ->
        let phis, _ = Block.split_phis sb in
        Env
          (List.fold_left
             (fun acc (i : Instr.t) ->
               match i.Instr.op with
               | Instr.Phi (_, incs) -> (
                 match List.assoc_opt pred incs with
                 | Some v -> IMap.add i.Instr.id (eval_value e v) acc
                 | None -> acc)
               | _ -> acc)
             e phis)))

(* --- widening ------------------------------------------------------------- *)

let default_widen_budget = 8

let widen_aval ~(prev : aval) (cur : aval) : aval =
  match prev, cur with
  | Range (pl, ph), Range (cl, ch) ->
    let lo = if Int64.compare cl pl < 0 then Int64.min_int else cl in
    let hi = if Int64.compare ch ph > 0 then Int64.max_int else ch in
    Range (lo, hi)
  | _ -> cur

let widen_env ~(prev : env) (cur : env) : env =
  match prev, cur with
  | Env p, Env c ->
    Env (IMap.mapi
           (fun r v ->
             match IMap.find_opt r p with
             | Some pv -> widen_aval ~prev:pv v
             | None -> v)
           c)
  | _ -> cur

(* --- public result -------------------------------------------------------- *)

type t = {
  entry_env : env SMap.t; (* joined, phi-bound fact at each block entry *)
  vals : aval IMap.t;     (* abstract value of every register at its def *)
  iterations : int;
}

let of_func ?(widen_budget = default_widen_budget) (f : Func.t) : t =
  Obs.Span.with_ "posetrl.analysis.absint"
    ~attrs:[ ("func", Obs.Event.S f.Func.name) ]
    (fun sp ->
      Obs.Metrics.inc (Obs.Metrics.counter "posetrl.analysis.absint.funcs");
      let block_map = Func.block_map f in
      let defs = Func.def_map f in
      let init_env =
        Env
          (List.fold_left
             (fun e (p, ty) -> IMap.add p (type_default ty) e)
             IMap.empty f.Func.params)
      in
      let visits : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let prev_out : (string, env) Hashtbl.t = Hashtbl.create 16 in
      let transfer (b : Block.t) (fact : env) : env =
        let out = transfer_block b fact in
        let l = b.Block.label in
        let n = 1 + Option.value (Hashtbl.find_opt visits l) ~default:0 in
        Hashtbl.replace visits l n;
        let out =
          if n > widen_budget then
            match Hashtbl.find_opt prev_out l with
            | Some prev -> widen_env ~prev (L.join prev out)
            | None -> out
          else out
        in
        Hashtbl.replace prev_out l out;
        out
      in
      let edge ~pred ~succ fact =
        refine_edge ~defs ~block_map ~pred ~succ fact
      in
      let result =
        Solver.solve ~direction:Dataflow.Forward ~init:init_env ~edge ~transfer
          f
      in
      (* replay each reachable block once to record per-register values *)
      let vals = ref IMap.empty in
      List.iter
        (fun (p, ty) -> vals := IMap.add p (type_default ty) !vals)
        f.Func.params;
      List.iter
        (fun (b : Block.t) ->
          match Solver.entry_fact result b.Block.label with
          | Unreached -> ()
          | Env e ->
            ignore
              (List.fold_left
                 (fun e (i : Instr.t) ->
                   if i.Instr.id < 0 then e
                   else
                     match i.Instr.op with
                     | Instr.Phi _ ->
                       vals := IMap.add i.Instr.id (find_aval e i.Instr.id) !vals;
                       e
                     | op ->
                       let v = eval_op e op in
                       vals := IMap.add i.Instr.id
                           (join_aval v
                              (Option.value (IMap.find_opt i.Instr.id !vals)
                                 ~default:Bot))
                           !vals;
                       IMap.add i.Instr.id v e)
                 e b.Block.insns))
        f.Func.blocks;
      Obs.Span.set_attr sp "iterations" (Obs.Event.I result.Solver.iterations);
      { entry_env =
          SMap.of_seq
            (Seq.map
               (fun (l, _) -> (l, Solver.entry_fact result l))
               (Dataflow.SMap.to_seq result.Solver.at_entry));
        vals = !vals;
        iterations = result.Solver.iterations })

let val_of (t : t) (r : int) : aval =
  Option.value (IMap.find_opt r t.vals) ~default:Bot

let env_at_entry (t : t) (label : string) : env =
  Option.value (SMap.find_opt label t.entry_env) ~default:Unreached

let reachable (t : t) (label : string) : bool =
  env_at_entry t label <> Unreached
