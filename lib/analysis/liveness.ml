(* Register liveness, as a backward dataflow problem over register sets.

   Phi semantics follow SSA convention: a phi's incoming value is a use
   on the edge from the corresponding predecessor (added by the solver's
   edge function), not a use at the top of the phi's block, and phi
   definitions are killed in their own block like any other def. This
   makes live-in sets exact — a register feeding only a phi is live out
   of the matching predecessor but never live into the phi's block. *)

open Posetrl_ir
module ISet = Set.Make (Int)
module SMap = Map.Make (String)

module Lattice = struct
  type t = ISet.t

  let bottom = ISet.empty
  let equal = ISet.equal
  let join = ISet.union
end

module Solver = Dataflow.Make (Lattice)

let add_reg acc = function Value.Reg r -> ISet.add r acc | _ -> acc

(* Registers a phi in [b] consumes when control arrives from [pred]. *)
let phi_uses_from (b : Block.t) ~(pred : string) : ISet.t =
  List.fold_left
    (fun acc (i : Instr.t) ->
      match i.Instr.op with
      | Instr.Phi (_, incs) ->
        (match List.assoc_opt pred incs with
         | Some (Value.Reg r) -> ISet.add r acc
         | _ -> acc)
      | _ -> acc)
    ISet.empty b.Block.insns

(* One backward sweep over a block: kill the def, add the (non-phi)
   uses, starting from the live-out set. *)
let transfer (b : Block.t) (out : ISet.t) : ISet.t =
  let live = List.fold_left add_reg out (Instr.term_operands b.Block.term) in
  List.fold_left
    (fun live (i : Instr.t) ->
      let live = if i.Instr.id >= 0 then ISet.remove i.Instr.id live else live in
      match i.Instr.op with
      | Instr.Phi _ -> live (* incoming values are edge uses, not block uses *)
      | op -> List.fold_left add_reg live (Instr.operands op))
    live
    (List.rev b.Block.insns)

type t = {
  live_in : ISet.t SMap.t;
  live_out : ISet.t SMap.t;
  iterations : int;
}

let of_func (f : Func.t) : t =
  let bmap = Func.block_map f in
  let edge ~pred ~succ fact =
    match SMap.find_opt succ bmap with
    | Some sb -> ISet.union fact (phi_uses_from sb ~pred)
    | None -> fact
  in
  let r = Solver.solve ~direction:Dataflow.Backward ~edge ~transfer f in
  { live_in = r.Solver.at_entry;
    live_out = r.Solver.at_exit;
    iterations = r.Solver.iterations }

let live_in (t : t) label =
  Option.value (SMap.find_opt label t.live_in) ~default:ISet.empty

let live_out (t : t) label =
  Option.value (SMap.find_opt label t.live_out) ~default:ISet.empty

(* live set just before the terminator *)
let transfer_start (b : Block.t) (out : ISet.t) : ISet.t =
  List.fold_left add_reg out (Instr.term_operands b.Block.term)

(* Registers whose defining pure instruction computes a value that is
   never live — dead code a cleanup pass could delete. Walks each block
   backward from its live-out set, so same-block later uses count. *)
let dead_defs (t : t) (f : Func.t) : ISet.t =
  List.fold_left
    (fun dead (b : Block.t) ->
      let live = ref (transfer_start b (live_out t b.Block.label)) in
      List.fold_left
        (fun dead (i : Instr.t) ->
          let dead =
            if i.Instr.id >= 0
               && (not (ISet.mem i.Instr.id !live))
               && Instr.is_pure i.Instr.op
            then ISet.add i.Instr.id dead
            else dead
          in
          (if i.Instr.id >= 0 then live := ISet.remove i.Instr.id !live);
          (match i.Instr.op with
           | Instr.Phi _ -> ()
           | op -> live := List.fold_left add_reg !live (Instr.operands op));
          dead)
        dead
        (List.rev b.Block.insns))
    ISet.empty f.Func.blocks
