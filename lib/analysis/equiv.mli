(* Translation validation by differential simulation: given the module
   before and after a pass application, run both under the reference
   interpreter on deterministic seed-derived inputs and require exact
   agreement on every observable (return value, printed output, and —
   for per-function checks — the final contents of a scratch buffer the
   pointer parameters alias into).

   This is concretized checking, not a proof: a reported mismatch is
   always a real behavioural divergence; agreement on all seeds is
   strong evidence, not certainty. Both sides trapping counts as
   agreement, and an out-of-fuel run on either side skips the
   comparison rather than failing it. *)

open Posetrl_ir

type mismatch = {
  func : string;  (* function the divergence was observed through *)
  detail : string;
}

(* Name of the synthetic driver function; a module that already defines
   it is validated through [main] only. *)
val harness_name : string

val default_fuel : int
val default_seeds : int

(* Can [f] be driven from a harness? Every parameter must be a scalar
   or one of a bounded number of pointers. *)
val harnessable : Func.t -> bool

(* The driver function for [f] at a given seed: seeds the scratch
   buffer, calls [f] with deterministic arguments, prints the return
   value and every scratch cell. Exposed for testing. *)
val build_harness : seed:int -> Func.t -> Func.t

(* [m] with [h] appended to its function list. *)
val with_harness : Modul.t -> Func.t -> Modul.t

(* Validate one pass application; [] means no divergence observed.
   [per_function] should be true for function-scope passes: each
   changed definition is then also driven through its own harness.
   Module-scope passes (inlining, IPO) are validated through [main]
   alone. *)
val validate :
  ?seeds:int -> ?fuel:int -> ?per_function:bool -> before:Modul.t ->
  Modul.t -> mismatch list

val mismatch_to_string : mismatch -> string
