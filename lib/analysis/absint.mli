(* Forward abstract interpretation over MiniIR: a product domain of
   signed integer intervals, float constancy and pointer nullness, run
   on the generic dataflow solver with per-edge refinement (branch
   conditions, switch keys and phi bindings narrow the fact flowing
   along each CFG edge) and widening after a visit budget so loops
   converge. Everything is an over-approximation: the concrete value of
   a register at its definition is always contained in its abstract
   value. *)

open Posetrl_ir

module IMap : Map.S with type key = int and type 'a t = 'a Map.Make(Int).t

module SMap :
  Map.S with type key = string and type 'a t = 'a Map.Make(String).t

(* Abstract value of one SSA register. [Range] is a signed inclusive
   interval; [Fconst] a known-constant float; [PNull]/[PNonNull]/
   [PAny] pointer nullness; [Bot] unreachable / no value. *)
type aval =
  | Bot
  | Range of int64 * int64
  | Fconst of float
  | PNull
  | PNonNull
  | PAny
  | Top

val aval_to_string : aval -> string
val aval_equal : aval -> aval -> bool
val join_aval : aval -> aval -> aval

(* Could the abstract value contain the concrete integer [v]? *)
val contains_int : aval -> int64 -> bool

(* Abstract transfer for a binop / an icmp, exposed for testing. *)
val eval_binop_aval : Instr.binop -> Types.t -> aval -> aval -> aval
val eval_icmp_aval : Instr.icmp -> aval -> aval -> aval

(* Could [x op y] at type [ty] wrap around the type's bounds? False
   only when the intervals prove it cannot (a full-range operand is
   treated as "no information", not as a guaranteed wrap). *)
val may_overflow : Instr.binop -> Types.t -> aval -> aval -> bool

(* Abstract environment at a block entry: register -> abstract value,
   or [Unreached] when no path can arrive. *)
type env = Unreached | Env of aval IMap.t

type t = {
  entry_env : env SMap.t; (* joined, phi-bound fact at each block entry *)
  vals : aval IMap.t;     (* abstract value of every register at its def *)
  iterations : int;
}

val default_widen_budget : int
val of_func : ?widen_budget:int -> Func.t -> t

(* Abstract value of register [r] at its definition; [Bot] if never
   computed (e.g. the defining block is unreachable). *)
val val_of : t -> int -> aval

val env_at_entry : t -> string -> env

(* Can the labelled block execute at all, given the path conditions? *)
val reachable : t -> string -> bool
