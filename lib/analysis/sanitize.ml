(* The semantic sanitizer: structural verification plus SSA dominance
   checking, run after every pass when the pass manager's [~sanitize]
   level asks for it, with a minimized repro written out on failure.

   Levels:
     - [Off]        — no checking (production default)
     - [Structural] — the structural verifier only
     - [Ssa]        — structural + dominance ([Verifier ~dom:true])
     - [Equiv]      — Ssa plus translation validation: every pass
                      application is differentially simulated against its
                      input on seeded concrete inputs ([Equiv.validate]);
                      a behavioural divergence fails the pass exactly like
                      a verifier error, including the minimized repro.

   Instrumentation follows the repo convention: counters
   [posetrl.analysis.sanitize.checks] / [.failures], span
   [posetrl.analysis.sanitize.check]. All checking state is per-call
   (the verifier and dominator computation allocate locally), so
   sanitized evaluation is safe under [--jobs N]. *)

open Posetrl_ir
module Obs = Posetrl_obs

type level = Off | Structural | Ssa | Equiv

let level_to_string = function
  | Off -> "off"
  | Structural -> "structural"
  | Ssa -> "ssa"
  | Equiv -> "equiv"

let level_of_string = function
  | "off" -> Ok Off
  | "structural" -> Ok Structural
  | "ssa" | "full" -> Ok Ssa
  | "equiv" | "tv" -> Ok Equiv
  | s ->
    Error (Printf.sprintf "unknown sanitize level %S (off|structural|ssa|equiv)" s)

let wants_dom = function Off | Structural -> false | Ssa | Equiv -> true

(* Verifier errors for [m] at [level]; [] at [Off]. [Equiv] checks the
   same well-formedness as [Ssa] here — behavioural validation needs the
   pre-pass module too and lives in [check_transform]. *)
let check_module (level : level) (m : Modul.t) : Verifier.error list =
  match level with
  | Off -> []
  | Structural | Ssa | Equiv ->
    Obs.Span.with_ "posetrl.analysis.sanitize.check"
      ~attrs:[ ("level", Obs.Event.S (level_to_string level)) ]
      (fun sp ->
        Obs.Metrics.inc (Obs.Metrics.counter "posetrl.analysis.sanitize.checks");
        let errs = Verifier.verify_module ~dom:(wants_dom level) m in
        if errs <> [] then begin
          Obs.Metrics.inc
            ~by:(float_of_int (List.length errs))
            (Obs.Metrics.counter "posetrl.analysis.sanitize.failures");
          Obs.Span.set_attr sp "errors" (Obs.Event.I (List.length errs))
        end;
        errs)

let mismatch_errors (ms : Equiv.mismatch list) : Verifier.error list =
  List.map
    (fun (m : Equiv.mismatch) ->
      { Verifier.func = m.Equiv.func;
        block = None;
        message = "translation validation: " ^ m.Equiv.detail })
    ms

(* Check one pass application at [level]: well-formedness of [after],
   plus (at [Equiv], when [after] is well-formed) differential simulation
   against [before]. [per_function] should be false for module-scope
   passes (inlining/IPO), whose per-function behaviour may legitimately
   change. *)
let check_transform (level : level) ?(per_function = true) ~(before : Modul.t)
    (after : Modul.t) : Verifier.error list =
  match check_module level after with
  | (_ :: _) as errs -> errs
  | [] ->
    if level = Equiv then
      Obs.Span.with_ "posetrl.analysis.sanitize.equiv" (fun _ ->
          let ms = Equiv.validate ~per_function ~before after in
          let errs = mismatch_errors ms in
          if errs <> [] then
            Obs.Metrics.inc
              ~by:(float_of_int (List.length errs))
              (Obs.Metrics.counter "posetrl.analysis.sanitize.failures");
          errs)
    else []

exception Failed of {
  pass : string;
  errors : Verifier.error list;
  repro_path : string option;
}

let () =
  Printexc.register_printer (function
    | Failed { pass; errors; repro_path } ->
      Some
        (Printf.sprintf "sanitizer: pass %s produced invalid IR (%d error%s)%s\n%s"
           pass (List.length errors)
           (if List.length errors = 1 then "" else "s")
           (match repro_path with
            | Some p -> Printf.sprintf "; repro at %s" p
            | None -> "")
           (String.concat "\n" (List.map Verifier.error_to_string errors)))
    | _ -> None)

(* Shrink the failing input with the greedy delta debugger. [run_pass]
   re-runs the offending pass on a candidate input; a candidate counts
   as still-failing when the pass either raises or produces IR the
   sanitizer rejects. Validity = the candidate input itself passes the
   same check the original input passed. *)
let minimize_input ~(level : level) ?(per_function = true)
    ~(run_pass : Modul.t -> Modul.t) (input : Modul.t) : Modul.t =
  let dom = wants_dom level in
  let valid c = Verifier.verify_module ~dom c = [] in
  let check c =
    match run_pass c with
    | exception _ -> true
    | out -> check_transform level ~per_function ~before:c out <> []
  in
  Obs.Span.with_ "posetrl.analysis.sanitize.minimize" (fun sp ->
      let minimized = Delta.minimize ~valid ~check input in
      Obs.Span.set_attr sp "funcs"
        (Obs.Event.I (List.length minimized.Modul.funcs));
      minimized)

(* Write the minimized repro as a .mir next to a .json describing the
   failure; returns the .mir path. [dir] is created if missing. *)
let rec mkdir_p (dir : string) : unit =
  if not (Sys.file_exists dir) && not (String.equal dir "") then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_repro ~(dir : string) ~(pass : string) ~(level : level)
    ~(errors : Verifier.error list) (repro : Modul.t) : string =
  mkdir_p dir;
  let base =
    (* distinct per (pass, module); repeated failures overwrite, which
       is what a debugging loop wants *)
    Printf.sprintf "sanitize-%s-%s" pass repro.Modul.name
  in
  let mir_path = Filename.concat dir (base ^ ".mir") in
  let oc = open_out mir_path in
  output_string oc (Printer.module_to_string repro);
  close_out oc;
  let meta =
    Obs.Json.Obj
      [ ("kind", Obs.Json.Str "sanitize-repro");
        ("pass", Obs.Json.Str pass);
        ("level", Obs.Json.Str (level_to_string level));
        ("module", Obs.Json.Str repro.Modul.name);
        ("input", Obs.Json.Str (Filename.basename mir_path));
        ("errors",
         Obs.Json.Arr
           (List.map
              (fun e -> Obs.Json.Str (Verifier.error_to_string e))
              errors)) ]
  in
  Obs.Runlog.write_json_file (Filename.concat dir (base ^ ".json")) meta;
  Obs.Metrics.inc (Obs.Metrics.counter "posetrl.analysis.sanitize.repros");
  mir_path

(* Full failure protocol used by the pass manager: the output of [pass]
   on [input] failed the [level] check — minimize, write the repro (when
   a directory is given) and raise [Failed]. *)
let fail ~(pass : string) ~(level : level) ?(per_function = true)
    ~(repro_dir : string option) ~(run_pass : Modul.t -> Modul.t)
    ~(errors : Verifier.error list) (input : Modul.t) : 'a =
  let repro = minimize_input ~level ~per_function ~run_pass input in
  let repro_path =
    Option.map (fun dir -> write_repro ~dir ~pass ~level ~errors repro) repro_dir
  in
  raise (Failed { pass; errors; repro_path })
