(* The semantic sanitizer: structural verification, SSA dominance
   checking and (at [Equiv]) translation validation, run after every
   pass when the pass manager's [~sanitize] level asks for it, with a
   minimized repro written out on failure.

   Levels:
     - [Off]        — no checking (production default)
     - [Structural] — the structural verifier only
     - [Ssa]        — structural + dominance
     - [Equiv]      — Ssa plus translation validation: every pass
                      application is differentially simulated against
                      its input on seeded concrete inputs
                      ([Equiv.validate]); a behavioural divergence fails
                      the pass exactly like a verifier error. *)

open Posetrl_ir

type level = Off | Structural | Ssa | Equiv

val level_to_string : level -> string

(* Accepts "off", "structural", "ssa"/"full", "equiv"/"tv". *)
val level_of_string : string -> (level, string) result

val wants_dom : level -> bool

(* Verifier errors for [m] at [level]; [] at [Off]. [Equiv] checks the
   same well-formedness as [Ssa] here — behavioural validation needs
   the pre-pass module too and lives in [check_transform]. *)
val check_module : level -> Modul.t -> Verifier.error list

(* Check one pass application at [level]: well-formedness of the after
   module, plus (at [Equiv], when it is well-formed) differential
   simulation against [before]. [per_function] should be false for
   module-scope passes (inlining/IPO), whose per-function behaviour may
   legitimately change. *)
val check_transform :
  level -> ?per_function:bool -> before:Modul.t -> Modul.t ->
  Verifier.error list

exception Failed of {
  pass : string;
  errors : Verifier.error list;
  repro_path : string option;
}

(* Shrink a failing input with the greedy delta debugger; [run_pass]
   re-runs the offending pass on each candidate, and a candidate counts
   as still-failing when [check_transform] rejects the application. *)
val minimize_input :
  level:level -> ?per_function:bool -> run_pass:(Modul.t -> Modul.t) ->
  Modul.t -> Modul.t

(* Write the repro module as a .mir next to a .json describing the
   failure; returns the .mir path. [dir] is created if missing. *)
val write_repro :
  dir:string -> pass:string -> level:level ->
  errors:Verifier.error list -> Modul.t -> string

(* Full failure protocol used by the pass manager: minimize, write the
   repro (when a directory is given) and raise [Failed]. *)
val fail :
  pass:string -> level:level -> ?per_function:bool ->
  repro_dir:string option -> run_pass:(Modul.t -> Modul.t) ->
  errors:Verifier.error list -> Modul.t -> 'a
