(* Greedy delta-debug minimizer for sanitizer failures.

   Given a module on which some predicate [check] holds ("this input
   still makes the pass produce invalid IR"), shrink it while keeping
   the predicate true: first drop whole function definitions, then drop
   individual non-entry blocks (with phi-predecessor fixup). Candidates
   must also satisfy [valid] — the same verifier standard the original
   module met — so the minimized repro fails for the original reason,
   not because shrinking broke it structurally.

   Greedy one-pass-per-level is deliberate: repro inputs are small
   (one workload module) and each [check] re-runs the offending pass,
   so we optimise for few predicate evaluations over minimality. *)

open Posetrl_ir

let drop_func (m : Modul.t) (name : string) : Modul.t =
  { m with
    Modul.funcs =
      List.filter (fun (f : Func.t) -> not (String.equal f.Func.name name)) m.Modul.funcs }

let drop_block (f : Func.t) (label : string) : Func.t =
  let blocks =
    List.filter (fun (b : Block.t) -> not (String.equal b.Block.label label)) f.Func.blocks
  in
  let blocks = List.map (Block.remove_phi_pred ~pred:label) blocks in
  Func.with_blocks f blocks

let replace_func (m : Modul.t) (f : Func.t) : Modul.t = Modul.replace_func m f

(* still_fails candidate = candidate is well-formed AND reproduces *)
let minimize ~(valid : Modul.t -> bool) ~(check : Modul.t -> bool) (m : Modul.t) :
    Modul.t =
  let still_fails c = valid c && check c in
  (* level 1: drop whole function definitions *)
  let m =
    List.fold_left
      (fun acc (f : Func.t) ->
        if Func.is_declaration f then acc
        else
          let candidate = drop_func acc f.Func.name in
          if candidate.Modul.funcs <> [] && still_fails candidate then candidate
          else acc)
      m (Modul.defined_funcs m)
  in
  (* level 2: drop non-entry blocks inside the survivors *)
  List.fold_left
    (fun acc (f : Func.t) ->
      let shrunk =
        List.fold_left
          (fun (g : Func.t) (b : Block.t) ->
            match g.Func.blocks with
            | entry :: _ when not (String.equal entry.Block.label b.Block.label) ->
              let candidate = replace_func acc (drop_block g b.Block.label) in
              if still_fails candidate then drop_block g b.Block.label else g
            | _ -> g)
          f f.Func.blocks
      in
      replace_func acc shrunk)
    m (Modul.defined_funcs m)
