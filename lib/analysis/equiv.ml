(* Translation validation by differential simulation.

   The Ssa sanitizer tier proves a transformed module is still *well-formed*;
   it says nothing about whether the pass preserved behaviour. This module
   closes that gap for the Equiv tier: given the module before and after a
   pass application, it runs both under the reference interpreter on
   deterministic, seed-derived inputs and compares every observable —
   return value, printed output, and (for per-function checks) the final
   contents of a scratch buffer that pointer parameters alias into.

   This is concretized symbolic checking, not a proof: loops make full
   symbolic lockstep simulation intractable, so instead each seed fixes the
   free symbols (arguments, initial memory) to concrete values derived from
   a hash of the function name and seed index, and the two sides are
   required to agree exactly on everything the interpreter can observe.
   A disagreement is always a real miscompile; agreement on all seeds is
   strong evidence, not certainty. Traps must match in kind (both trap =
   pass); an out-of-fuel run on either side skips the comparison rather
   than failing it, since a pass may legitimately change how much work a
   bounded run performs.

   Checks are cheap in the common case: most pass applications are no-ops,
   and a byte-identical printed module short-circuits before any
   interpretation happens. *)

open Posetrl_ir
module Obs = Posetrl_obs
module Interp = Posetrl_interp.Interp
module SMap = Map.Make (String)

type mismatch = {
  func : string;  (* function the divergence was observed through *)
  detail : string;
}

let harness_name = "__equiv.check"

(* Scratch buffer the harness allocates: 32 i64 cells. Pointer parameters
   are carved out of it (8 cells each, at most 4 pointer params), and every
   cell is printed after the call so stores through those pointers are
   observable. *)
let scratch_cells = 32
let cells_per_ptr = 8
let max_ptr_params = scratch_cells / cells_per_ptr

(* Seed-derived argument values. Small mixed-sign integers exercise
   branches and wrap behaviour without making most random programs trap. *)
let arg_pool =
  [| 0L; 1L; 2L; 3L; 5L; 7L; -1L; 8L; 13L; -4L; 17L; 100L; -31L; 64L; 9L; 255L |]

let pool_pick h = arg_pool.(abs h mod Array.length arg_pool)

let scalar_ty = function
  | Types.I1 | Types.I8 | Types.I32 | Types.I64 | Types.F64 -> true
  | _ -> false

let harnessable_ty ty = scalar_ty ty || Types.equal ty Types.Ptr

(* A function we can drive from a harness: every parameter is a scalar or
   one of at most [max_ptr_params] pointers, and the module doesn't already
   define something under the harness name. *)
let harnessable (f : Func.t) =
  (not (Func.is_declaration f))
  && List.for_all (fun (_, ty) -> harnessable_ty ty) f.Func.params
  && List.length (List.filter (fun (_, ty) -> Types.equal ty Types.Ptr) f.Func.params)
     <= max_ptr_params

(* Build the driver function for [f] at a given seed. It seeds the scratch
   buffer, calls [f] with deterministic arguments, prints the return value
   (widened to i64 for narrow ints), then prints every scratch cell. *)
let build_harness ~seed (f : Func.t) : Func.t =
  let b = Builder.create ~name:harness_name ~params:[] ~ret:Types.I64 () in
  Builder.block b "entry";
  let scratch = Builder.alloca b Types.I64 scratch_cells in
  let h0 = Hashtbl.hash (f.Func.name, seed, "cells") in
  for c = 0 to scratch_cells - 1 do
    let p = Builder.gep b Types.I64 scratch (Value.cint Types.I64 (Int64.of_int c)) in
    Builder.store b Types.I64 (Value.cint Types.I64 (pool_pick (h0 + c))) p
  done;
  let nptr = ref 0 in
  let args =
    List.map
      (fun (idx, ty) ->
        let h = Hashtbl.hash (f.Func.name, idx, seed) in
        match ty with
        | Types.I1 -> Value.cint Types.I1 (Int64.of_int (h land 1))
        | Types.I8 | Types.I32 | Types.I64 -> Value.cint ty (pool_pick h)
        | Types.F64 -> Value.cfloat (Int64.to_float (pool_pick h) /. 2.0)
        | Types.Ptr ->
          let j = !nptr in
          incr nptr;
          Builder.gep b Types.I64 scratch
            (Value.cint Types.I64 (Int64.of_int (j * cells_per_ptr)))
        | _ -> invalid_arg "Equiv.build_harness: unsupported parameter type")
      f.Func.params
  in
  let r = Builder.call b f.Func.ret f.Func.name args in
  (match f.Func.ret with
   | Types.I64 -> ignore (Builder.call b Types.I64 "print_i64" [ r ])
   | Types.I1 | Types.I8 | Types.I32 ->
     let w = Builder.sext b ~from_ty:f.Func.ret ~to_ty:Types.I64 r in
     ignore (Builder.call b Types.I64 "print_i64" [ w ])
   | Types.F64 -> ignore (Builder.call b Types.I64 "print_f64" [ r ])
   | _ -> () (* Ptr / Void / Vec returns are not printed *));
  for c = 0 to scratch_cells - 1 do
    let p = Builder.gep b Types.I64 scratch (Value.cint Types.I64 (Int64.of_int c)) in
    let v = Builder.load b Types.I64 p in
    ignore (Builder.call b Types.I64 "print_i64" [ v ])
  done;
  Builder.ret b Types.I64 (Value.cint Types.I64 0L);
  Builder.finish b

let with_harness (m : Modul.t) (h : Func.t) : Modul.t =
  { m with Modul.funcs = m.Modul.funcs @ [ h ] }

(* --- observation comparison ---------------------------------------------- *)

type verdict = Pass | Skip | Fail of string

let is_fuel_trap msg = String.equal msg "out of fuel"

let truncate s n = if String.length s <= n then s else String.sub s 0 n ^ "..."

let compare_obs before after : verdict =
  match before, after with
  | Error e, _ when is_fuel_trap e -> Skip
  | _, Error e when is_fuel_trap e -> Skip
  | Ok (r1, o1), Ok (r2, o2) ->
    if String.equal r1 r2 && String.equal o1 o2 then Pass
    else
      Fail
        (Printf.sprintf "before ret=%s out=%S / after ret=%s out=%S" r1
           (truncate o1 160) r2 (truncate o2 160))
  | Error _, Error _ -> Pass (* both sides trap: divergence in detail is fine *)
  | Ok (r1, _), Error e -> Fail (Printf.sprintf "after traps (%s), before ret=%s" e r1)
  | Error e, Ok (r2, _) -> Fail (Printf.sprintf "before traps (%s), after ret=%s" e r2)

let default_fuel = 2_000_000
let default_seeds = 2

let observe ~fuel ~entry ?(args = []) m =
  try Interp.observe ~fuel ~entry ~args m with
  | Failure msg | Invalid_argument msg -> Error ("interp failure: " ^ msg)

(* Drive one (before, after) function pair through [seeds] harness runs. *)
let check_func_pair ~seeds ~fuel ~(before : Modul.t) ~(after : Modul.t)
    (f : Func.t) : verdict =
  let rec go seed =
    if seed >= seeds then Pass
    else
      let h = build_harness ~seed f in
      let vb = observe ~fuel ~entry:harness_name (with_harness before h) in
      let va = observe ~fuel ~entry:harness_name (with_harness after h) in
      match compare_obs vb va with
      | Pass | Skip -> go (seed + 1)
      | Fail d -> Fail (Printf.sprintf "seed %d: %s" seed d)
  in
  go 0

(* Concrete interpreter values for main's parameters, when main takes any.
   Pointer-taking mains are not checkable this way. *)
let concrete_args ~seed (f : Func.t) : Interp.value list option =
  if List.for_all (fun (_, ty) -> scalar_ty ty) f.Func.params then
    Some
      (List.map
         (fun (idx, ty) ->
           let h = Hashtbl.hash (f.Func.name, idx, seed) in
           match ty with
           | Types.I1 -> Interp.VInt (Int64.of_int (h land 1))
           | Types.F64 -> Interp.VFloat (Int64.to_float (pool_pick h) /. 2.0)
           | _ -> Interp.VInt (Types.wrap ty (pool_pick h)))
         f.Func.params)
  else None

(* Physical-equality memo for main observations. In a pass pipeline the
   "before" module of pass N+1 *is* the "after" module of pass N, so
   without this every module's main gets interpreted twice. Keyed on
   (module identity, seed); tiny LRU since chains only ever need the
   last module or two. *)
let main_memo : (Modul.t * int * (string * string, string) result) list ref =
  ref []

let memo_limit = 8

let observe_main ~fuel ~seed ~args (m : Modul.t) =
  match List.find_opt (fun (m', s, _) -> m' == m && s = seed) !main_memo with
  | Some (_, _, r) -> r
  | None ->
    let r = observe ~fuel ~entry:"main" ~args m in
    let kept =
      List.filteri (fun i _ -> i < memo_limit - 1) !main_memo
    in
    main_memo := (m, seed, r) :: kept;
    r

let check_main ~seeds ~fuel ~(before : Modul.t) ~(after : Modul.t) : verdict =
  match Modul.find_func before "main", Modul.find_func after "main" with
  | Some fb, Some _ when not (Func.is_declaration fb) ->
    (* a nullary main runs identically under every seed *)
    let seeds = if fb.Func.params = [] then 1 else seeds in
    let rec go seed =
      if seed >= seeds then Pass
      else
        match concrete_args ~seed fb with
        | None -> Pass
        | Some args ->
          let vb = observe_main ~fuel ~seed ~args before in
          let va = observe_main ~fuel ~seed ~args after in
          (match compare_obs vb va with
           | Pass | Skip -> go (seed + 1)
           | Fail d -> Fail (Printf.sprintf "seed %d: %s" seed d))
    in
    go 0
  | _ -> Pass

let signature_equal (a : Func.t) (b : Func.t) =
  Types.equal a.Func.ret b.Func.ret
  && List.length a.Func.params = List.length b.Func.params
  && List.for_all2
       (fun (_, t1) (_, t2) -> Types.equal t1 t2)
       a.Func.params b.Func.params

(* --- public entry point --------------------------------------------------- *)

(* Validate one pass application. [per_function] should be true for
   function-scope passes: each changed definition is then also driven
   through its own harness, which observes behaviour main never reaches.
   Module-scope passes (inlining, IPO, global DCE) legitimately change
   individual function behaviour in ways that only whole-program
   observation can judge, so they are validated through main alone. *)
let validate ?(seeds = default_seeds) ?(fuel = default_fuel)
    ?(per_function = true) ~(before : Modul.t) (after : Modul.t) :
    mismatch list =
  if before == after || Stdlib.compare before after = 0 then []
  else
    Obs.Span.with_ "posetrl.analysis.equiv.validate"
      ~attrs:[ ("module", Obs.Event.S after.Modul.name) ]
      (fun sp ->
        Obs.Metrics.inc (Obs.Metrics.counter "posetrl.analysis.equiv.checks");
        let mismatches = ref [] in
        let record func detail = mismatches := { func; detail } :: !mismatches in
        (match check_main ~seeds ~fuel ~before ~after with
         | Fail d -> record "main" d
         | Pass | Skip -> ());
        if per_function && Option.is_none (Modul.find_func before harness_name)
        then begin
          let befores =
            List.fold_left
              (fun acc f -> SMap.add f.Func.name f acc)
              SMap.empty before.Modul.funcs
          in
          List.iter
            (fun (fa : Func.t) ->
              if (not (Func.is_declaration fa)) && fa.Func.name <> "main" then
                match SMap.find_opt fa.Func.name befores with
                | Some fb
                  when signature_equal fb fa && harnessable fa
                       && Stdlib.compare fb fa <> 0 -> (
                  match check_func_pair ~seeds ~fuel ~before ~after fa with
                  | Fail d -> record fa.Func.name d
                  | Pass | Skip -> ())
                | _ -> ())
            after.Modul.funcs
        end;
        let out = List.rev !mismatches in
        if out <> [] then
          Obs.Metrics.inc
            ~by:(float_of_int (List.length out))
            (Obs.Metrics.counter "posetrl.analysis.equiv.mismatches");
        Obs.Span.set_attr sp "mismatches" (Obs.Event.I (List.length out));
        out)

let mismatch_to_string m = Printf.sprintf "%s: %s" m.func m.detail
