(* Generic monotone dataflow framework over a function CFG.

   A client supplies a join-semilattice (LATTICE) and a per-block
   transfer function; [Make(L).solve] runs the classic worklist
   algorithm in either direction and returns the fixed-point facts at
   every block boundary.

   Termination: transfer functions are required to be monotone and the
   lattice to have finite height. Facts start at [L.bottom] and are only
   ever replaced when the joined input strictly changes ([L.equal]
   returns false), so each block's fact can change at most height-many
   times and the worklist drains after O(height * blocks * edges) steps.
   A generous safety bound turns an accidental non-monotone transfer
   into an exception instead of a hang.

   Domain safety: all solver state (fact tables, worklist, visit flags)
   is allocated inside [solve] — there are no globals and no caches, so
   concurrent solves of the same function from different domains are
   safe (see the pool test in test/test_analysis.ml). *)

open Posetrl_ir
module SMap = Map.Make (String)

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) = struct
  type result = {
    at_entry : L.t SMap.t;  (* fact at block entry (live-in style) *)
    at_exit : L.t SMap.t;   (* fact at block exit (live-out style) *)
    iterations : int;       (* transfer applications until the fixpoint *)
  }

  let entry_fact result label =
    Option.value (SMap.find_opt label result.at_entry) ~default:L.bottom

  let exit_fact result label =
    Option.value (SMap.find_opt label result.at_exit) ~default:L.bottom

  (* [edge ~pred ~succ fact] refines the fact flowing along one CFG edge
     before it is joined (liveness uses it to add phi-operand uses on
     the edge they are live on). Defaults to the identity. *)
  let solve ?(direction = Forward) ?(init = L.bottom)
      ?(edge = fun ~pred:_ ~succ:_ fact -> fact)
      ~(transfer : Block.t -> L.t -> L.t) (f : Func.t) : result =
    let cfg = Cfg.of_func f in
    let blocks = Array.of_list f.Func.blocks in
    let n = Array.length blocks in
    let index = Hashtbl.create (2 * n) in
    Array.iteri (fun i b -> Hashtbl.replace index b.Block.label i) blocks;
    (* process in an order that reaches the fixpoint quickly: reverse
       post-order for forward problems, post-order for backward ones;
       blocks unreachable from the entry keep their list position *)
    let order =
      let visited = Array.make n false in
      let ranked =
        List.filter_map
          (fun l ->
            match Hashtbl.find_opt index l with
            | Some i ->
              visited.(i) <- true;
              Some i
            | None -> None)
          (match direction with
           | Forward -> Cfg.rpo cfg
           | Backward -> Cfg.postorder cfg)
      in
      let rest = ref [] in
      for i = n - 1 downto 0 do
        if not visited.(i) then rest := i :: !rest
      done;
      Array.of_list (ranked @ !rest)
    in
    (* facts, indexed by block: [inputs] is the joined fact entering the
       transfer, [outputs] the transfer result *)
    let joined = Array.make n L.bottom in
    let transferred = Array.make n L.bottom in
    let entry_label = cfg.Cfg.entry in
    let neighbours_in l =
      (* edges whose facts feed block [l] *)
      match direction with
      | Forward -> List.map (fun p -> (p, l)) (Cfg.preds cfg l)
      | Backward -> List.map (fun s -> (l, s)) (Cfg.succs cfg l)
    in
    let neighbours_out l =
      match direction with
      | Forward -> Cfg.succs cfg l
      | Backward -> Cfg.preds cfg l
    in
    let on_queue = Array.make n false in
    let queue = Queue.create () in
    Array.iter
      (fun i ->
        on_queue.(i) <- true;
        Queue.add i queue)
      order;
    let iterations = ref 0 in
    let budget = 64 + (1024 * n * (1 + n)) in
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      on_queue.(i) <- false;
      let b = blocks.(i) in
      let l = b.Block.label in
      incr iterations;
      if !iterations > budget then
        failwith
          (Printf.sprintf
             "Dataflow.solve: no fixpoint after %d iterations in %s (non-monotone transfer?)"
             !iterations f.Func.name);
      let boundary =
        (* the entry block (forward) / exit blocks (backward) additionally
           receive the boundary fact [init] *)
        match direction with
        | Forward -> if String.equal l entry_label then Some init else None
        | Backward -> if Cfg.succs cfg l = [] then Some init else None
      in
      let joined_in =
        List.fold_left
          (fun acc (p, s) ->
            let feeding = if direction = Forward then p else s in
            match Hashtbl.find_opt index feeding with
            | None -> acc
            | Some j -> L.join acc (edge ~pred:p ~succ:s transferred.(j)))
          (Option.value boundary ~default:L.bottom)
          (neighbours_in l)
      in
      joined.(i) <- joined_in;
      let out = transfer b joined_in in
      if not (L.equal out transferred.(i)) then begin
        transferred.(i) <- out;
        List.iter
          (fun l' ->
            match Hashtbl.find_opt index l' with
            | Some j when not on_queue.(j) ->
              on_queue.(j) <- true;
              Queue.add j queue
            | _ -> ())
          (neighbours_out l)
      end
    done;
    let to_map arr =
      Array.to_seqi blocks
      |> Seq.fold_left (fun m (i, b) -> SMap.add b.Block.label arr.(i) m) SMap.empty
    in
    (* at_entry/at_exit are direction-independent names: for a forward
       problem the transfer input sits at the block entry; for a
       backward one it sits at the exit *)
    match direction with
    | Forward ->
      { at_entry = to_map joined; at_exit = to_map transferred; iterations = !iterations }
    | Backward ->
      { at_entry = to_map transferred; at_exit = to_map joined; iterations = !iterations }
end
