(* Register liveness, as a backward dataflow problem over register
   sets. Phi semantics follow SSA convention: a phi's incoming value is
   a use on the edge from the corresponding predecessor, not a use at
   the top of the phi's block, so live-in sets are exact. *)

open Posetrl_ir

module ISet : Set.S with type elt = int and type t = Set.Make(Int).t

module SMap :
  Map.S with type key = string and type 'a t = 'a Map.Make(String).t

type t = {
  live_in : ISet.t SMap.t;
  live_out : ISet.t SMap.t;
  iterations : int;  (* solver transfer applications *)
}

val of_func : Func.t -> t

(* Registers live into / out of the labelled block; empty for unknown
   labels. *)
val live_in : t -> string -> ISet.t
val live_out : t -> string -> ISet.t

(* Registers a phi in [b] consumes when control arrives from [pred]. *)
val phi_uses_from : Block.t -> pred:string -> ISet.t

(* Registers whose defining pure instruction computes a value that is
   never live — dead code a cleanup pass could delete. *)
val dead_defs : t -> Func.t -> ISet.t
