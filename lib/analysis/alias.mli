(* Interprocedural flow-insensitive alias analysis.

   Per function, an Andersen-style points-to pass maps every pointer
   value to a set of abstract locations (allocas by defining register,
   globals by name, or the unknown location); per module, a bottom-up
   fixpoint over the call graph summarizes which globals each function
   may read or write ([modref]). Everything is a may-analysis: absence
   from a set is a proof, presence is only a possibility. *)

open Posetrl_ir

module ISet : Set.S with type elt = int and type t = Set.Make(Int).t

(* An abstract memory location: a local alloca (by its defining
   register), a module global, or the unknown location standing for
   escaped / external memory. *)
type loc = LAlloca of int | LGlobal of string | LUnknown

module LSet : Set.S with type elt = loc

val loc_to_string : loc -> string

(* Per-function points-to facts. *)
type finfo

val of_func : Func.t -> finfo

(* Locations [v] may point to; pointers the analysis cannot resolve get
   the unknown location. *)
val pts : finfo -> Value.t -> LSet.t

val is_escaped : finfo -> int -> bool

(* Allocas whose address never escapes the function. *)
val private_allocas : finfo -> ISet.t

(* May the two locations denote overlapping memory? [LUnknown] overlaps
   everything except non-escaping allocas. *)
val locs_overlap : finfo -> loc -> loc -> bool

(* May the two pointer values reference overlapping memory?
   Syntactically equal values always may-alias. *)
val may_alias : finfo -> Value.t -> Value.t -> bool

(* Every location in [s] is a non-escaping alloca. *)
val all_private : finfo -> LSet.t -> bool

(* Could a call (to any function) read or write the memory [p] points
   to? False exactly when everything [p] may reference is private. *)
val call_may_touch : finfo -> Value.t -> bool

(* Which globals a function may read/write; [mod_unknown]/[ref_unknown]
   cover writes/reads through escaped or external memory. *)
type modref = {
  mod_globals : Set.Make(String).t;
  ref_globals : Set.Make(String).t;
  mod_unknown : bool;
  ref_unknown : bool;
}

val modref_bottom : modref
val modref_top : modref
val modref_join : modref -> modref -> modref
val modref_equal : modref -> modref -> bool
val modref_to_string : modref -> string

(* Module-wide summary: per-function points-to plus the mod/ref
   fixpoint over the call graph. *)
type t

val summarize : Modul.t -> t
val finfo_of : t -> string -> finfo option

(* Mod/ref summary for the named function; [modref_top] for unknown or
   external functions. *)
val modref_of : t -> string -> modref
