(* Generic monotone dataflow framework over a function CFG: a client
   supplies a join-semilattice and a per-block transfer function, and
   [Make(L).solve] runs the classic worklist algorithm in either
   direction to a fixed point. Transfer functions must be monotone and
   the lattice of finite height; a safety bound turns an accidental
   non-monotone transfer into an exception instead of a hang. All
   solver state is allocated per call, so concurrent solves from
   different domains are safe. *)

open Posetrl_ir

module SMap :
  Map.S with type key = string and type 'a t = 'a Map.Make(String).t

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) : sig
  type result = {
    at_entry : L.t SMap.t;  (* fact at block entry (live-in style) *)
    at_exit : L.t SMap.t;   (* fact at block exit (live-out style) *)
    iterations : int;       (* transfer applications until the fixpoint *)
  }

  val entry_fact : result -> string -> L.t
  val exit_fact : result -> string -> L.t

  (* [solve ~transfer f] computes the fixpoint. [init] is the boundary
     fact fed into the entry block (forward) or the exit blocks
     (backward). [edge ~pred ~succ fact] refines the fact flowing along
     one CFG edge before it is joined — liveness uses it for
     phi-operand edge uses, the abstract interpreter for branch
     refinement; it defaults to the identity. *)
  val solve :
    ?direction:direction ->
    ?init:L.t ->
    ?edge:(pred:string -> succ:string -> L.t -> L.t) ->
    transfer:(Block.t -> L.t -> L.t) ->
    Func.t ->
    result
end
