(* Reaching definitions, as a forward dataflow problem.

   In SSA there is exactly one definition per register, so the analysis
   degenerates to "which registers have a definition on some path from
   the entry" — still useful: a use of a register that does NOT reach it
   is exactly a dominance violation the sanitizer reports, and the
   forward direction exercises the half of the framework liveness does
   not. Parameters reach everything from the entry. *)

open Posetrl_ir
module ISet = Set.Make (Int)
module SMap = Map.Make (String)

module Lattice = struct
  type t = ISet.t

  let bottom = ISet.empty
  let equal = ISet.equal
  let join = ISet.union
end

module Solver = Dataflow.Make (Lattice)

let defs_of_block (b : Block.t) : ISet.t =
  List.fold_left
    (fun acc (i : Instr.t) ->
      if i.Instr.id >= 0 then ISet.add i.Instr.id acc else acc)
    ISet.empty b.Block.insns

let transfer (b : Block.t) (inb : ISet.t) : ISet.t =
  ISet.union inb (defs_of_block b)

type t = {
  reach_in : ISet.t SMap.t;
  reach_out : ISet.t SMap.t;
  iterations : int;
}

let of_func (f : Func.t) : t =
  let params = ISet.of_list (Func.param_regs f) in
  let r = Solver.solve ~direction:Dataflow.Forward ~init:params ~transfer f in
  { reach_in = r.Solver.at_entry;
    reach_out = r.Solver.at_exit;
    iterations = r.Solver.iterations }

let reach_in (t : t) label =
  Option.value (SMap.find_opt label t.reach_in) ~default:ISet.empty

let reach_out (t : t) label =
  Option.value (SMap.find_opt label t.reach_out) ~default:ISet.empty
