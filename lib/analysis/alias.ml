(* Alias analysis: flow-insensitive points-to and escape information per
   function, plus interprocedural mod-ref summaries computed by the same
   callgraph-fixpoint scheme as [Effects.summarize].

   The location domain is deliberately small — one abstract location per
   alloca site, one per global, and a single [LUnknown] standing for all
   caller-provided and heap memory. Points-to sets are solved by a
   worklist-free round-robin fixpoint (sets only grow, bounded by the
   location universe, so |insns| * |locations| rounds terminate).

   Two pointers may alias when their pointee sets overlap; [LUnknown]
   overlaps everything *except* allocas whose address never escapes the
   function — nobody outside can hold a pointer to an address that was
   never stored, passed, returned or cast away. This is what lets the
   alias-aware dse/licm/gvn paths reason about loads and calls without a
   whole-program heap model.

   All state lives in the returned values — nothing global — so analyses
   can run concurrently across domains (same contract as Effects). *)

open Posetrl_ir
module Obs = Posetrl_obs
module IMap = Map.Make (Int)
module ISet = Set.Make (Int)
module SSet = Set.Make (String)
module SMap = Map.Make (String)

type loc = LAlloca of int | LGlobal of string | LUnknown

module LSet = Set.Make (struct
  type t = loc

  let compare = Stdlib.compare
end)

let loc_to_string = function
  | LAlloca r -> Printf.sprintf "alloca %%%d" r
  | LGlobal g -> Printf.sprintf "@%s" g
  | LUnknown -> "unknown"

type finfo = {
  points_to : LSet.t IMap.t; (* pointer register -> may-point-to set *)
  allocas : ISet.t;          (* alloca instruction ids in the function *)
  escaped : ISet.t;          (* allocas whose address leaves the function *)
}

(* --- per-function points-to ---------------------------------------------- *)

let unknown = LSet.singleton LUnknown

(* Pointee set of a value under the current table. Constants that are
   not addresses (null, undef, ints) point at nothing — null aliases no
   dereferenceable location. *)
let pts_under (tbl : LSet.t IMap.t) (v : Value.t) : LSet.t =
  match v with
  | Value.Const _ -> LSet.empty
  | Value.Global g -> LSet.singleton (LGlobal g)
  | Value.Reg r -> Option.value (IMap.find_opt r tbl) ~default:LSet.empty

let of_func (f : Func.t) : finfo =
  (* parameters of pointer type are caller memory *)
  let tbl =
    List.fold_left
      (fun tbl (p, ty) ->
        if Types.equal ty Types.Ptr then IMap.add p unknown tbl else tbl)
      IMap.empty f.Func.params
  in
  let allocas =
    Func.fold_insns
      (fun acc _ i ->
        match i.Instr.op with
        | Instr.Alloca _ -> ISet.add i.Instr.id acc
        | _ -> acc)
      ISet.empty f
  in
  (* round-robin to a fixpoint: each constraint only unions sets *)
  let tbl = ref tbl in
  let changed = ref true in
  let update id s =
    let cur = Option.value (IMap.find_opt id !tbl) ~default:LSet.empty in
    if not (LSet.subset s cur) then begin
      tbl := IMap.add id (LSet.union cur s) !tbl;
      changed := true
    end
  in
  while !changed do
    changed := false;
    Func.iter_insns
      (fun _ (i : Instr.t) ->
        let id = i.Instr.id in
        if id >= 0 then
          match i.Instr.op with
          | Instr.Alloca _ -> update id (LSet.singleton (LAlloca id))
          | Instr.Gep (_, base, _) -> update id (pts_under !tbl base)
          | Instr.Expect (ty, v, _) when Types.equal ty Types.Ptr ->
            update id (pts_under !tbl v)
          | Instr.Select (ty, _, a, b) when Types.equal ty Types.Ptr ->
            update id (LSet.union (pts_under !tbl a) (pts_under !tbl b))
          | Instr.Phi (ty, incs) when Types.equal ty Types.Ptr ->
            List.iter (fun (_, v) -> update id (pts_under !tbl v)) incs
          | Instr.Cast (Instr.Bitcast, from_ty, to_ty, v)
            when Types.equal from_ty Types.Ptr && Types.equal to_ty Types.Ptr ->
            update id (pts_under !tbl v)
          | op ->
            (* anything else that produces a pointer (loads, calls,
               int-to-pointer casts, unknown intrinsics) may point
               anywhere *)
            if Types.equal (Instr.result_ty op) Types.Ptr then update id unknown)
      f
  done;
  let tbl = !tbl in
  (* escape: the address is stored as a value, passed to a call, used as
     an indirect-call target, returned, cast to an integer, or flows into
     a terminator — after that, [LUnknown] may cover it. Using a pointer
     purely as a load/store/memcpy address or a gep base is not an
     escape: it derives or dereferences, it does not leak. *)
  let escaped = ref ISet.empty in
  let escape_via v =
    LSet.iter
      (function LAlloca a -> escaped := ISet.add a !escaped | _ -> ())
      (pts_under tbl v)
  in
  Func.iter_insns
    (fun _ (i : Instr.t) ->
      match i.Instr.op with
      | Instr.Store (_, v, _) -> escape_via v
      | Instr.Call (_, _, args) -> List.iter escape_via args
      | Instr.Callind (_, fv, args) ->
        escape_via fv;
        List.iter escape_via args
      | Instr.Cast (_, from_ty, to_ty, v)
        when Types.equal from_ty Types.Ptr && not (Types.equal to_ty Types.Ptr)
        ->
        escape_via v
      | _ -> ())
    f;
  List.iter
    (fun (b : Block.t) ->
      match b.Block.term with
      | Instr.Ret (Some (_, v)) -> escape_via v
      | _ -> ())
    f.Func.blocks;
  { points_to = tbl; allocas; escaped = !escaped }

(* --- queries -------------------------------------------------------------- *)

let pts (fi : finfo) (v : Value.t) : LSet.t = pts_under fi.points_to v
let is_escaped (fi : finfo) (a : int) : bool = ISet.mem a fi.escaped
let private_allocas (fi : finfo) : ISet.t = ISet.diff fi.allocas fi.escaped

let locs_overlap (fi : finfo) (l1 : loc) (l2 : loc) : bool =
  match l1, l2 with
  | LUnknown, LUnknown -> true
  | LUnknown, LGlobal _ | LGlobal _, LUnknown -> true
  | LUnknown, LAlloca a | LAlloca a, LUnknown -> is_escaped fi a
  | LGlobal g, LGlobal h -> String.equal g h
  | LAlloca a, LAlloca b -> a = b
  | LGlobal _, LAlloca _ | LAlloca _, LGlobal _ -> false

(* May the pointers [v1] and [v2] address overlapping memory? Syntactic
   equality is must-alias; empty pointee sets (null/undef) alias
   nothing. *)
let may_alias (fi : finfo) (v1 : Value.t) (v2 : Value.t) : bool =
  Value.equal v1 v2
  ||
  let s1 = pts fi v1 and s2 = pts fi v2 in
  LSet.exists (fun l1 -> LSet.exists (fun l2 -> locs_overlap fi l1 l2) s2) s1

(* All pointees are allocas that never escape: memory no call, unknown
   pointer or caller can reach. *)
let all_private (fi : finfo) (s : LSet.t) : bool =
  (not (LSet.is_empty s))
  && LSet.for_all
       (function LAlloca a -> not (is_escaped fi a) | _ -> false)
       s

(* May a call (to an arbitrary callee) read or write the memory behind
   [p]? Only function-private allocas are out of reach. *)
let call_may_touch (fi : finfo) (p : Value.t) : bool =
  not (all_private fi (pts fi p))

(* --- interprocedural mod-ref summaries ------------------------------------ *)

type modref = {
  mod_globals : SSet.t;
  ref_globals : SSet.t;
  mod_unknown : bool; (* may write caller/heap memory *)
  ref_unknown : bool; (* may read caller/heap memory *)
}

let modref_bottom =
  { mod_globals = SSet.empty;
    ref_globals = SSet.empty;
    mod_unknown = false;
    ref_unknown = false }

let modref_top =
  { modref_bottom with mod_unknown = true; ref_unknown = true }

let modref_join a b =
  { mod_globals = SSet.union a.mod_globals b.mod_globals;
    ref_globals = SSet.union a.ref_globals b.ref_globals;
    mod_unknown = a.mod_unknown || b.mod_unknown;
    ref_unknown = a.ref_unknown || b.ref_unknown }

let modref_equal a b =
  SSet.equal a.mod_globals b.mod_globals
  && SSet.equal a.ref_globals b.ref_globals
  && a.mod_unknown = b.mod_unknown
  && a.ref_unknown = b.ref_unknown

let modref_to_string mr =
  let side name set unknown =
    match SSet.elements set, unknown with
    | [], false -> name ^ " nothing"
    | gs, u ->
      Printf.sprintf "%s {%s%s}" name (String.concat ", " gs)
        (if u then (if gs = [] then "unknown" else ", unknown") else "")
  in
  side "mod" mr.mod_globals mr.mod_unknown
  ^ "; "
  ^ side "ref" mr.ref_globals mr.ref_unknown

type t = {
  finfos : finfo SMap.t;    (* per defined function *)
  modrefs : modref SMap.t;  (* every function, declarations included *)
}

let declared_modref (f : Func.t) : modref =
  if Func.has_attr Attrs.readnone f then modref_bottom
  else if Func.has_attr Attrs.readonly f then
    { modref_bottom with ref_unknown = true }
  else modref_top

(* Fold the pointee set of an accessed pointer into one side of the
   summary. The function's own allocas are frame-local — dead at return —
   so they never show up in its caller-visible summary. *)
let add_access (fi : finfo) (p : Value.t) ~(write : bool) (mr : modref) : modref
    =
  LSet.fold
    (fun l mr ->
      match l with
      | LAlloca _ -> mr
      | LGlobal g ->
        if write then { mr with mod_globals = SSet.add g mr.mod_globals }
        else { mr with ref_globals = SSet.add g mr.ref_globals }
      | LUnknown ->
        if write then { mr with mod_unknown = true }
        else { mr with ref_unknown = true })
    (pts fi p) mr

let func_modref (tbl : modref SMap.t) (fi : finfo) (f : Func.t) : modref =
  Func.fold_insns
    (fun mr _ (i : Instr.t) ->
      match i.Instr.op with
      | Instr.Store (_, _, p) -> add_access fi p ~write:true mr
      | Instr.Load (_, p) -> add_access fi p ~write:false mr
      | Instr.Memcpy (d, s, _) ->
        add_access fi d ~write:true (add_access fi s ~write:false mr)
      | Instr.Call (_, callee, _) ->
        modref_join mr
          (Option.value (SMap.find_opt callee tbl) ~default:modref_top)
      | Instr.Callind _ -> modref_join mr modref_top
      | Instr.Intrinsic ("memset", _, base :: _) ->
        add_access fi base ~write:true mr
      | Instr.Intrinsic
          (("assume" | "assume.aligned" | "lifetime.start" | "lifetime.end"
           | "expect"), _, _) ->
        mr
      | Instr.Intrinsic _ -> modref_join mr modref_top
      | _ -> mr)
    modref_bottom f

(* Callgraph fixpoint, same shape as [Effects.summarize]: summaries only
   grow (join-monotone over a finite lattice — globals are finite), so
   the round bound is a belt, not the termination argument. *)
let summarize (m : Modul.t) : t =
  Obs.Span.with_ "posetrl.analysis.alias.summarize"
    ~attrs:[ ("module", Obs.Event.S m.Modul.name) ]
    (fun sp ->
      Obs.Metrics.inc (Obs.Metrics.counter "posetrl.analysis.alias.summaries");
      let finfos =
        List.fold_left
          (fun acc (f : Func.t) -> SMap.add f.Func.name (of_func f) acc)
          SMap.empty (Modul.defined_funcs m)
      in
      let init =
        List.fold_left
          (fun tbl (f : Func.t) ->
            let mr =
              if Func.is_declaration f then declared_modref f
              else modref_bottom
            in
            SMap.add f.Func.name mr tbl)
          SMap.empty m.Modul.funcs
      in
      let defined = Modul.defined_funcs m in
      let rounds = ref 0 in
      let rec fix tbl =
        incr rounds;
        if !rounds > (2 * List.length m.Modul.funcs) + List.length m.Modul.globals + 2
        then tbl
        else
          let changed = ref false in
          let tbl' =
            List.fold_left
              (fun tbl (f : Func.t) ->
                let cur =
                  Option.value
                    (SMap.find_opt f.Func.name tbl)
                    ~default:modref_bottom
                in
                let fi = SMap.find f.Func.name finfos in
                let mr = modref_join cur (func_modref tbl fi f) in
                if not (modref_equal mr cur) then changed := true;
                SMap.add f.Func.name mr tbl)
              tbl defined
          in
          if !changed then fix tbl' else tbl'
      in
      let modrefs = fix init in
      Obs.Span.set_attr sp "funcs" (Obs.Event.I (List.length defined));
      { finfos; modrefs })

let finfo_of (t : t) (name : string) : finfo option = SMap.find_opt name t.finfos

let modref_of (t : t) (name : string) : modref =
  Option.value (SMap.find_opt name t.modrefs) ~default:modref_top
