(* Available expressions: a forward "must" analysis — an expression is
   available at a point iff it has been computed on EVERY path reaching
   it. The join is therefore set intersection, encoded with an explicit
   top element ([All], the lattice bottom under the solver's join) so
   unvisited facts start as the identity of intersection.

   Expression keys are the pure instruction shape (opcode, result type,
   operands); SSA means operands are never redefined, so there are no
   kills. Loads and other memory reads are deliberately excluded. *)

open Posetrl_ir
module SSet = Set.Make (String)
module SMap = Map.Make (String)

(* [All] = "every expression" (top of the must-analysis, the solver's
   bottom); [Avail s] = exactly the expressions in [s]. *)
type fact = All | Avail of SSet.t

module Lattice = struct
  type t = fact

  let bottom = All

  let equal a b =
    match a, b with
    | All, All -> true
    | Avail x, Avail y -> SSet.equal x y
    | _ -> false

  let join a b =
    match a, b with
    | All, x | x, All -> x
    | Avail x, Avail y -> Avail (SSet.inter x y)
end

module Solver = Dataflow.Make (Lattice)

(* Canonical key of a pure expression; [None] for anything impure or
   position-dependent. Result type disambiguates casts sharing a name. *)
let expr_key (op : Instr.op) : string option =
  if not (Instr.is_pure op) then None
  else
    match op with
    | Instr.Phi _ -> None
    | _ ->
      Some
        (Printf.sprintf "%s:%s(%s)" (Instr.opcode_name op)
           (Types.to_string (Instr.result_ty op))
           (String.concat "," (List.map Value.to_string (Instr.operands op))))

let exprs_of_block (b : Block.t) : SSet.t =
  List.fold_left
    (fun acc (i : Instr.t) ->
      match expr_key i.Instr.op with
      | Some k -> SSet.add k acc
      | None -> acc)
    SSet.empty b.Block.insns

let transfer (b : Block.t) (inb : fact) : fact =
  match inb with
  | All -> All (* unreachable block: vacuously everything *)
  | Avail s -> Avail (SSet.union s (exprs_of_block b))

type t = {
  avail_in : fact SMap.t;
  avail_out : fact SMap.t;
  iterations : int;
}

let of_func (f : Func.t) : t =
  let r =
    Solver.solve ~direction:Dataflow.Forward ~init:(Avail SSet.empty) ~transfer f
  in
  { avail_in = r.Solver.at_entry;
    avail_out = r.Solver.at_exit;
    iterations = r.Solver.iterations }

let avail_in (t : t) label =
  Option.value (SMap.find_opt label t.avail_in) ~default:All

(* Pure instructions whose expression is already available at block
   entry (recomputations a CSE/GVN pass could forward): (block, id). *)
let redundant (t : t) (f : Func.t) : (string * int) list =
  List.concat_map
    (fun (b : Block.t) ->
      match avail_in t b.Block.label with
      | All -> []
      | Avail at_entry ->
        let seen = ref at_entry in
        List.filter_map
          (fun (i : Instr.t) ->
            match expr_key i.Instr.op with
            | Some k ->
              if SSet.mem k !seen then Some (b.Block.label, i.Instr.id)
              else begin
                seen := SSet.add k !seen;
                None
              end
            | None -> None)
          b.Block.insns)
    f.Func.blocks
