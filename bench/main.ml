(* POSET-RL experiment harness.

   Regenerates every table and figure of the paper's evaluation (plus the
   design ablations called out in DESIGN.md) against the OCaml
   reproduction, and finishes with bechamel micro-benchmarks of the hot
   components.

   Usage:  dune exec bench/main.exe [-- section ...]
   Sections: fig1 tables123 fig4 table4 table5 fig5 table6 ablations micro
   parallel analysis (default: all). The training budget per model is
   configurable with POSETRL_BENCH_STEPS (default 12000). *)

open Posetrl_ir
open Posetrl_support
module P = Posetrl_passes
module W = Posetrl_workloads
module C = Posetrl_core
module O = Posetrl_odg
module CG = Posetrl_codegen
module I = Posetrl_interp.Interp
module Obs = Posetrl_obs

let x86 = CG.Target.x86_64
let arm = CG.Target.aarch64

let default_bench_steps = 12000

let bench_steps =
  match Sys.getenv_opt "POSETRL_BENCH_STEPS" with
  | Some s -> (try int_of_string s with _ -> default_bench_steps)
  | None -> default_bench_steps

(* Headline numbers accumulated by the sections below and written through
   the run ledger as BENCH_runledger.json — the persistent perf
   trajectory a future run can `posetrl runs compare` against. *)
let headline : (string * Obs.Json.t) list ref = ref []

let record_headline key (j : Obs.Json.t) =
  headline := !headline @ [ (key, j) ]

let section_header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let run_cycles m =
  match I.run m with
  | o -> Some o.I.cycles
  | exception I.Trap _ -> None

let opt level m = P.Pass_manager.run_level level m

(* ======================================================================== *)
(* Fig 1: O3 vs Oz runtime and code size                                     *)
(* ======================================================================== *)

let fig1 () =
  section_header "Fig 1 - O3 vs Oz: runtime and code size (x86)";
  let t =
    Table.create ~title:"runtime (interp cycles) and object size (bytes)"
      ~headers:[ "benchmark"; "time O3"; "time Oz"; "Oz slowdown %"; "size O3"; "size Oz"; "Oz size gain %" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  let slowdowns = ref [] and gains = ref [] in
  List.iter
    (fun (name, m) ->
      let m3 = opt P.Pipelines.O3 m and mz = opt P.Pipelines.Oz m in
      let t3 = run_cycles m3 and tz = run_cycles mz in
      let s3 = CG.Objfile.size x86 m3 and sz = CG.Objfile.size x86 mz in
      let slow =
        match t3, tz with
        | Some a, Some b when a > 0 -> 100.0 *. float_of_int (b - a) /. float_of_int a
        | _ -> nan
      in
      let gain = 100.0 *. float_of_int (s3 - sz) /. float_of_int s3 in
      if Float.is_finite slow then slowdowns := slow :: !slowdowns;
      gains := gain :: !gains;
      Table.add_row t
        [ name;
          (match t3 with Some v -> string_of_int v | None -> "-");
          (match tz with Some v -> string_of_int v | None -> "-");
          Printf.sprintf "%.2f" slow;
          string_of_int s3;
          string_of_int sz;
          Printf.sprintf "%.2f" gain ])
    (W.Suites.all_programs ());
  Table.print t;
  record_headline "fig1_oz_slowdown_pct" (Obs.Json.Float (Stats.mean !slowdowns));
  record_headline "fig1_oz_size_gain_pct" (Obs.Json.Float (Stats.mean !gains));
  Printf.printf
    "average: Oz runs %.2f%% slower than O3 while being %.2f%% smaller\n\
     (paper Fig 1 reports ~10%% slower / ~3.5%% smaller on real SPEC)\n"
    (Stats.mean !slowdowns) (Stats.mean !gains)

(* ======================================================================== *)
(* Tables I-III: the Oz sequence and both action spaces                      *)
(* ======================================================================== *)

let tables123 () =
  section_header "Table I - reconstructed -Oz sequence";
  Printf.printf "%d pass instances, %d unique passes\n"
    (List.length P.Pipelines.oz_sequence)
    (List.length P.Pipelines.unique_passes);
  Printf.printf "%s\n" (String.concat " " (List.map (fun p -> "-" ^ p) P.Pipelines.oz_sequence));
  section_header "Table II - 15 manual sub-sequences";
  List.iteri
    (fun k g -> Printf.printf "%2d | %s\n" (k + 1) (String.concat " " (List.map (fun p -> "-" ^ p) g)))
    P.Pipelines.manual_groups;
  section_header "Table III - 34 ODG sub-sequences (canonical)";
  Array.iteri
    (fun k a -> Printf.printf "%2d | %s\n" (k + 1) (String.concat " " (List.map (fun p -> "-" ^ p) a)))
    O.Action_space.odg.O.Action_space.actions;
  let derived = O.Walks.derive ~k:8 (Lazy.force O.Graph.default) in
  let canonical = Array.to_list O.Action_space.odg.O.Action_space.actions in
  let matches = List.length (List.filter (fun w -> List.mem w canonical) derived) in
  Printf.printf
    "\nwalk derivation: %d sub-sequences derived from the ODG; %d/34 match the\n\
     canonical table verbatim (the rest differ only in the paper's own\n\
     barrier/mem2reg placement inconsistencies)\n"
    (List.length derived) matches

(* ======================================================================== *)
(* Fig 4: the ODG                                                            *)
(* ======================================================================== *)

let fig4 () =
  section_header "Fig 4 - Oz Dependence Graph";
  let g = Lazy.force O.Graph.default in
  Printf.printf "nodes: %d   edges: %d\n" (O.Graph.node_count g) (O.Graph.edge_count g);
  Printf.printf "critical nodes (k >= 8):\n";
  List.iter
    (fun (n, d) -> Printf.printf "  %-14s degree %d\n" n d)
    (O.Graph.critical_nodes ~k:8 g);
  let dot = O.Graph.to_dot g in
  let path = "odg.dot" in
  let oc = open_out path in
  output_string oc dot;
  close_out oc;
  Printf.printf "graphviz rendering written to %s (%d bytes)\n" path (String.length dot)

(* ======================================================================== *)
(* model training                                                            *)
(* ======================================================================== *)

type trained = {
  space : O.Action_space.t;
  target : CG.Target.t;
  agent : Posetrl_rl.Dqn.t;
}

let train_model ~seed (space : O.Action_space.t) (target : CG.Target.t)
    (corpus : Modul.t array) : trained =
  let hp =
    { C.Trainer.fast with
      C.Trainer.total_steps = bench_steps;
      C.Trainer.epsilon =
        Posetrl_rl.Schedule.create ~start:1.0 ~stop:0.05
          ~decay_steps:(bench_steps * 3 / 4) () }
  in
  Printf.printf "training %s/%s model (%d steps)... %!" space.O.Action_space.name
    target.CG.Target.name hp.C.Trainer.total_steps;
  let t0 = Unix.gettimeofday () in
  let res = C.Trainer.train ~hp ~seed ~corpus ~actions:space ~target () in
  Printf.printf "done in %.1fs (%d episodes, mean episode reward %.2f)\n%!"
    (Unix.gettimeofday () -. t0) res.C.Trainer.episodes res.C.Trainer.final_mean_reward;
  { space; target; agent = res.C.Trainer.agent }

let models = ref ([] : trained list)

let get_model space target =
  match
    List.find_opt
      (fun t ->
        t.space.O.Action_space.name = space.O.Action_space.name
        && t.target.CG.Target.name = target.CG.Target.name)
      !models
  with
  | Some t -> t
  | None ->
    let corpus = W.Suites.training_corpus () in
    let t = train_model ~seed:20220522 space target corpus in
    models := t :: !models;
    t

let eval_suite (t : trained) ~measure_time (suite : W.Suites.suite) :
    C.Evaluate.program_result list =
  List.map
    (fun (name, mk) ->
      C.Evaluate.evaluate_program ~measure_time ~agent:t.agent ~actions:t.space
        ~target:t.target ~name (mk ()))
    suite.W.Suites.programs

(* ======================================================================== *)
(* Table IV: size reduction vs Oz                                            *)
(* ======================================================================== *)

let table4 () =
  section_header "Table IV - % size reduction vs -Oz (min / avg / max)";
  let tbl =
    Table.create
      ~title:"size reduction relative to Oz (positive = model smaller)"
      ~headers:[ "target"; "benchmark suite"; "space"; "min"; "avg"; "max" ]
      ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun target ->
      List.iter
        (fun space ->
          let model = get_model space target in
          List.iter
            (fun suite ->
              let rs = eval_suite model ~measure_time:false suite in
              let s = C.Evaluate.summarize_suite ~suite:suite.W.Suites.suite_name rs in
              record_headline
                (Printf.sprintf "table4_%s_%s_%s_avg_red"
                   target.CG.Target.name space.O.Action_space.name
                   suite.W.Suites.suite_name)
                (Obs.Json.Float s.C.Evaluate.avg_red);
              Table.add_row tbl
                [ target.CG.Target.name;
                  suite.W.Suites.suite_name;
                  space.O.Action_space.name;
                  Printf.sprintf "%.2f" s.C.Evaluate.min_red;
                  Printf.sprintf "%.2f" s.C.Evaluate.avg_red;
                  Printf.sprintf "%.2f" s.C.Evaluate.max_red ])
            W.Suites.validation_suites)
        [ O.Action_space.manual; O.Action_space.odg ])
    [ x86; arm ];
  Table.print tbl;
  print_endline
    "(paper Table IV: ODG avg positive on every suite and above the manual\n\
     space; occasional negative minima persist)"

(* ======================================================================== *)
(* Table V: execution-time improvement (x86)                                 *)
(* ======================================================================== *)

let table5 () =
  section_header "Table V - % execution-time improvement vs -Oz (x86)";
  let tbl =
    Table.create ~title:"runtime improvement (positive = model faster)"
      ~headers:[ "benchmark suite"; "manual"; "odg" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ] ()
  in
  let per_space space =
    let model = get_model space x86 in
    List.map
      (fun suite ->
        let rs = eval_suite model ~measure_time:true suite in
        let s = C.Evaluate.summarize_suite ~suite:suite.W.Suites.suite_name rs in
        Option.iter
          (fun t ->
            record_headline
              (Printf.sprintf "table5_%s_%s_time_impr"
                 space.O.Action_space.name suite.W.Suites.suite_name)
              (Obs.Json.Float t))
          s.C.Evaluate.avg_time_impr;
        (suite.W.Suites.suite_name, s.C.Evaluate.avg_time_impr))
      W.Suites.validation_suites
  in
  let manual = per_space O.Action_space.manual in
  let odg = per_space O.Action_space.odg in
  List.iter
    (fun (suite, mi) ->
      let oi = List.assoc suite odg in
      let fmt = function Some v -> Printf.sprintf "%.2f" v | None -> "-" in
      Table.add_row tbl [ suite; fmt mi; fmt oi ])
    manual;
  Table.print tbl;
  print_endline
    "(paper Table V: ODG +11.99% on SPEC-2017, -4.19% on SPEC-2006, +6.00%\n\
     on MiBench)"

(* ======================================================================== *)
(* Fig 5: per-benchmark runtime and size, Oz vs ODG model                     *)
(* ======================================================================== *)

let fig5 () =
  section_header "Fig 5 - per-benchmark runtime and size, Oz vs ODG model (x86)";
  let model = get_model O.Action_space.odg x86 in
  List.iter
    (fun suite ->
      if suite.W.Suites.suite_name <> "MiBench" then begin
        let rs = eval_suite model ~measure_time:true suite in
        let tbl =
          Table.create
            ~title:(Printf.sprintf "%s: runtime (cycles) and size (bytes)" suite.W.Suites.suite_name)
            ~headers:[ "benchmark"; "time Oz"; "time model"; "dt %"; "size Oz"; "size model"; "ds %" ]
            ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
            ()
        in
        List.iter
          (fun (r : C.Evaluate.program_result) ->
            Table.add_row tbl
              [ r.C.Evaluate.prog_name;
                (match r.C.Evaluate.time_oz with Some v -> string_of_int v | None -> "-");
                (match r.C.Evaluate.time_model with Some v -> string_of_int v | None -> "-");
                (match C.Evaluate.time_improvement_pct r with
                 | Some v -> Printf.sprintf "%+.2f" v
                 | None -> "-");
                string_of_int r.C.Evaluate.size_oz;
                string_of_int r.C.Evaluate.size_model;
                Printf.sprintf "%+.2f" (C.Evaluate.size_reduction_pct r) ])
          rs;
        Table.print tbl
      end)
    W.Suites.validation_suites

(* ======================================================================== *)
(* Table VI: predicted sub-sequences                                          *)
(* ======================================================================== *)

let table6 () =
  section_header "Table VI - predicted action sequences (ODG space)";
  let cases =
    [ ("508.namd", x86); ("525.x264", x86); ("susan", x86);
      ("508.namd", arm); ("511.povray", arm) ]
  in
  List.iteri
    (fun k (name, target) ->
      match W.Suites.find_program name with
      | None -> Printf.printf "%d | %s: program not found\n" (k + 1) name
      | Some mk ->
        let model = get_model O.Action_space.odg target in
        let roll =
          C.Inference.predict ~agent:model.agent ~actions:O.Action_space.odg
            ~target (mk ())
        in
        Printf.printf "%d | %-10s (%s): %s\n" (k + 1) name target.CG.Target.name
          (String.concat " -> " (List.map string_of_int roll.C.Inference.actions)))
    cases;
  print_endline
    "(action indices refer to Table III rows, 0-based; the paper's examples\n\
     likewise mix loop, inliner and cleanup sub-sequences)"

(* ======================================================================== *)
(* Ablations                                                                  *)
(* ======================================================================== *)

let ablations () =
  section_header "Ablations - reward weights, DDQN vs DQN, episode length";
  let corpus = W.Suites.training_corpus ~n:60 () in
  let steps = max 1500 (bench_steps / 4) in
  let probe ~double ~max_steps label =
    let hp =
      { C.Trainer.fast with
        C.Trainer.total_steps = steps;
        C.Trainer.double;
        C.Trainer.max_episode_steps = max_steps;
        C.Trainer.epsilon =
          Posetrl_rl.Schedule.create ~start:1.0 ~stop:0.05
            ~decay_steps:(steps * 3 / 4) () }
    in
    let res = C.Trainer.train ~hp ~seed:777 ~corpus ~actions:O.Action_space.odg ~target:x86 () in
    let rs =
      List.concat_map
        (fun suite ->
          eval_suite { space = O.Action_space.odg; target = x86; agent = res.C.Trainer.agent }
            ~measure_time:false suite)
        W.Suites.validation_suites
    in
    let reds = List.map C.Evaluate.size_reduction_pct rs in
    Printf.printf "  %-24s avg size reduction vs Oz: %+.2f%%\n%!" label (Stats.mean reds)
  in
  print_endline "episode length (steps per episode):";
  probe ~double:true ~max_steps:5 "5 steps";
  probe ~double:true ~max_steps:15 "15 steps (paper)";
  print_endline "agent flavour:";
  probe ~double:false ~max_steps:15 "vanilla DQN";
  probe ~double:true ~max_steps:15 "double DQN (paper)";
  print_endline "reward weights (alpha: size, beta: throughput), random-policy probe:";
  List.iter
    (fun (alpha, beta) ->
      let weights = { C.Reward.alpha; C.Reward.beta } in
      let env =
        C.Environment.create ~weights ~target:x86 ~actions:O.Action_space.odg ()
      in
      let rng = Rng.create 4242 in
      let totals = ref [] in
      Array.iter
        (fun m ->
          ignore (C.Environment.reset env m);
          let total = ref 0.0 in
          for _ = 1 to 15 do
            let r = C.Environment.step env (Rng.int rng 34) in
            total := !total +. r.C.Environment.reward
          done;
          totals := !total :: !totals)
        (Array.sub corpus 0 12);
      Printf.printf "  alpha=%2.0f beta=%2.0f: mean random-policy episode reward %+.3f\n%!"
        alpha beta (Stats.mean !totals))
    [ (10.0, 5.0); (1.0, 0.0); (0.0, 1.0); (5.0, 10.0) ]

(* ======================================================================== *)
(* bechamel micro-benchmarks                                                  *)
(* ======================================================================== *)

(* Run a grouped test set on the fixed budget and return (name, ns/run)
   rows, OLS-estimated against the monotonic clock. *)
let bechamel_run tests : (string * float) list =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  let rows = ref [] in
  Hashtbl.iter
    (fun _clock tbl ->
      Hashtbl.iter
        (fun name r ->
          match Analyze.OLS.estimates r with
          | Some (est :: _) -> rows := (name, est) :: !rows
          | _ -> ())
        tbl)
    merged;
  List.sort compare !rows

let print_bechamel_rows rows =
  List.iter (fun (name, est) -> Printf.printf "  %-38s %14.1f ns/run\n" name est) rows

let micro () =
  section_header "Micro-benchmarks (bechamel)";
  let open Bechamel in
  let m = W.Mibench.crc32 () in
  let env = C.Environment.create ~target:x86 ~actions:O.Action_space.odg () in
  ignore (C.Environment.reset env m);
  let rng = Rng.create 99 in
  let agent =
    Posetrl_rl.Dqn.create rng ~state_dim:300 ~hidden:[ 128; 64 ] ~n_actions:34
  in
  let mz = opt P.Pipelines.Oz m in
  let state_vec = Array.make 300 0.1 in
  let tests =
    Test.make_grouped ~name:"posetrl"
      [ Test.make ~name:"oz-pipeline(crc32)" (Staged.stage (fun () -> ignore (opt P.Pipelines.Oz m)));
        Test.make ~name:"ir2vec-embed(crc32)"
          (Staged.stage (fun () -> ignore (Posetrl_ir2vec.Encoder.embed_program mz)));
        Test.make ~name:"objfile-size(crc32)"
          (Staged.stage (fun () -> ignore (CG.Objfile.size x86 mz)));
        Test.make ~name:"mca-throughput(crc32)"
          (Staged.stage (fun () -> ignore (Posetrl_mca.Mca.throughput x86 mz)));
        Test.make ~name:"dqn-forward(300->34)"
          (Staged.stage (fun () -> ignore (Posetrl_rl.Dqn.q_values agent state_vec)));
        Test.make ~name:"env-step(odg action 30)"
          (Staged.stage (fun () ->
               ignore (C.Environment.reset env m);
               ignore (C.Environment.step env 30)));
        (* observability overhead: a disabled span must cost a closure
           call, and a counter increment a float add *)
        Test.make ~name:"obs-span(no sink installed)"
          (Staged.stage (fun () -> Obs.Span.with_ "bench.noop" (fun _ -> ())));
        Test.make ~name:"obs-counter-inc"
          (let c = Obs.Metrics.counter "posetrl.bench.ticks" in
           Staged.stage (fun () -> Obs.Metrics.inc c));
        (* live-telemetry rendering: a /metrics scrape of a populated
           registry, and the chrome export of a medium trace — both sit
           on a request path, never the training hot path *)
        Test.make ~name:"expo-scrape(32 series)"
          (let r = Obs.Metrics.create () in
           for i = 0 to 23 do
             Obs.Metrics.set
               (Obs.Metrics.gauge ~r
                  ~labels:[ ("action", string_of_int i) ]
                  "posetrl.bench.gauge")
               (float_of_int i)
           done;
           for i = 0 to 7 do
             let h =
               Obs.Metrics.histogram ~r
                 ~labels:[ ("pass", string_of_int i) ]
                 "posetrl.bench.hist"
             in
             for j = 1 to 16 do Obs.Metrics.observe h (float_of_int j *. 1e-4) done
           done;
           Staged.stage (fun () -> ignore (Obs.Expo.scrape ~r ())));
        Test.make ~name:"chrome-export(256 events)"
          (let events =
             List.init 256 (fun i ->
                 { Obs.Event.name = "posetrl.pass.run";
                   attrs = [ ("pass", Obs.Event.S "dce") ];
                   t_start = float_of_int i *. 1e-3;
                   dur = 5e-4; self = 5e-4; depth = i mod 4; tid = 0 })
           in
           Staged.stage (fun () -> ignore (Obs.Chrome.to_string events))) ]
  in
  print_bechamel_rows (bechamel_run tests)

(* ======================================================================== *)
(* parallel engine: pool + batched gemm micro-benches and speedup probe       *)
(* ======================================================================== *)

(* Benches the multicore execution engine and writes BENCH_parallel.json,
   the file the bench-regression CI job diffs against the committed
   baseline. Raw ns/run numbers don't transfer between machines, so the
   gate compares each metric *relative to the calibration row* (a plain
   scalar FMA loop benched in the same process) — see
   .github/scripts/bench_gate.py. *)
let parallel () =
  section_header "Parallel engine (domain pool + batched gemm)";
  let open Bechamel in
  let module M = Posetrl_nn.Matrix in
  let jobs =
    match Sys.getenv_opt "POSETRL_BENCH_JOBS" with
    | Some s -> (try max 1 (int_of_string s) with _ -> 4)
    | None -> min 4 (Domain.recommended_domain_count ())
  in
  let rng = Rng.create 7 in
  let x = M.init 64 300 (fun _ _ -> Rng.normal rng) in
  let w = M.init 128 300 (fun _ _ -> Rng.normal rng) in
  let a = M.init 64 300 (fun _ _ -> Rng.normal rng) in
  let b = M.init 300 128 (fun _ _ -> Rng.normal rng) in
  let noops = Array.make 64 () in
  let pool = Pool.create ~name:"bench" ~jobs () in
  let rows =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        bechamel_run
          (Test.make_grouped ~name:"parallel"
             [ (* calibration: an untiled 4k dot product — the same
                  load/FMA bottleneck as the gemm inner loop, so the
                  gemm/calib ratio mostly cancels machine speed and the
                  committed baseline stays portable across machines *)
               Test.make ~name:"calib-dot-4k"
                 (let u = Array.init 4096 (fun i -> float_of_int i *. 1e-3) in
                  let v = Array.init 4096 (fun i -> float_of_int (i mod 7)) in
                  Staged.stage (fun () ->
                      let acc = ref 0.0 in
                      for i = 0 to 4095 do
                        acc := !acc +. (u.(i) *. v.(i))
                      done;
                      ignore (Sys.opaque_identity !acc)));
               Test.make ~name:"gemm-64x300x128"
                 (Staged.stage (fun () -> ignore (M.gemm a b)));
               Test.make ~name:"gemm-nt-64x300x128"
                 (Staged.stage (fun () -> ignore (M.gemm_nt x w)));
               Test.make ~name:"gemm-pool-64x300x128"
                 (Staged.stage (fun () -> ignore (M.gemm ~pool a b)));
               Test.make ~name:"pool-dispatch-64-noops"
                 (Staged.stage (fun () ->
                      ignore (Pool.map pool (fun () -> ()) noops)));
               Test.make ~name:"expo-scrape-32-series"
                 (let r = Obs.Metrics.create () in
                  for i = 0 to 31 do
                    Obs.Metrics.set
                      (Obs.Metrics.gauge ~r
                         ~labels:[ ("action", string_of_int i) ]
                         "posetrl.bench.gauge")
                      (float_of_int i)
                  done;
                  Staged.stage (fun () -> ignore (Obs.Expo.scrape ~r ()))) ]))
  in
  print_bechamel_rows rows;
  (* eval-shaped speedup probe: the Oz pipeline over every validation
     program, sequential vs pool — the wall-clock shape `posetrl eval
     --jobs N` parallelizes (informational; the CI gate keys on the
     micro rows above) *)
  let progs =
    Array.of_list
      (List.concat_map (fun s -> s.W.Suites.programs) W.Suites.validation_suites)
  in
  let work (_name, mk) = ignore (opt P.Pipelines.Oz (mk ())) in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let seq_s = time (fun () -> Array.iter work progs) in
  let par_s =
    Pool.with_pool ~name:"bench-speedup" ~jobs (fun p ->
        time (fun () -> ignore (Pool.map p work progs)))
  in
  let speedup = if par_s > 0.0 then seq_s /. par_s else 0.0 in
  Printf.printf
    "  oz-pipeline over %d programs: seq %.3fs  pool(j%d) %.3fs  speedup %.2fx\n"
    (Array.length progs) seq_s jobs par_s speedup;
  let ns suffix =
    match List.find_opt (fun (n, _) -> Filename.basename n = suffix) rows with
    | Some (_, v) -> v
    | None -> 0.0
  in
  let calib = ns "calib-dot-4k" in
  let rel v = if calib > 0.0 then v /. calib else 0.0 in
  let gemm_ns = ns "gemm-64x300x128" in
  let dispatch_ns = ns "pool-dispatch-64-noops" in
  let scrape_ns = ns "expo-scrape-32-series" in
  let path = "BENCH_parallel.json" in
  Obs.Runlog.write_json_file path
    (Obs.Json.Obj
       [ ("kind", Obs.Json.Str "bench-parallel");
         ("jobs", Obs.Json.Int jobs);
         ("micro_ns",
          Obs.Json.Obj (List.map (fun (n, v) -> (Filename.basename n, Obs.Json.Float v)) rows));
         ("gate",
          (* the two series the CI gate enforces (25% tolerance on the
             calibration-relative cost), plus the scrape row for context *)
          Obs.Json.Obj
            [ ("calib_ns", Obs.Json.Float calib);
              ("gemm_rel", Obs.Json.Float (rel gemm_ns));
              ("pool_dispatch_rel", Obs.Json.Float (rel dispatch_ns));
              ("expo_scrape_rel", Obs.Json.Float (rel scrape_ns)) ]);
         ("speedup",
          Obs.Json.Obj
            [ ("programs", Obs.Json.Int (Array.length progs));
              ("seq_s", Obs.Json.Float seq_s);
              ("pool_s", Obs.Json.Float par_s);
              ("speedup_x", Obs.Json.Float speedup) ]) ]);
  Printf.printf "  parallel bench baseline written to %s\n" path

(* ======================================================================== *)
(* static analysis: dataflow solver, sanitizer and lint micro-benches         *)
(* ======================================================================== *)

(* Benches Posetrl_analysis on the largest bundled workload and writes
   BENCH_analysis.json for the bench-regression CI job. Same
   calibration-relative scheme as the parallel section: every gated
   metric is reported as a ratio to the calib-dot-4k row benched in the
   same process, so the committed baseline transfers across machines. *)
let analysis () =
  section_header "Static analysis (dataflow solver + sanitizer + lint)";
  let open Bechamel in
  let module A = Posetrl_analysis in
  (* largest validation program by instruction count — the worst case
     the sanitizer sees once per pass under --sanitize *)
  let name, big =
    List.fold_left
      (fun (bn, bm) (n, m) ->
        if Modul.insn_count m > Modul.insn_count bm then (n, m) else (bn, bm))
      ("?", Modul.mk ~name:"empty" [])
      (W.Suites.all_programs ())
  in
  let big_oz = opt P.Pipelines.Oz big in
  Printf.printf "subject: %s (%d insns raw, %d after Oz)\n" name
    (Modul.insn_count big) (Modul.insn_count big_oz);
  let funcs = Modul.defined_funcs big in
  let rows =
    bechamel_run
      (Test.make_grouped ~name:"analysis"
         [ Test.make ~name:"calib-dot-4k"
             (let u = Array.init 4096 (fun i -> float_of_int i *. 1e-3) in
              let v = Array.init 4096 (fun i -> float_of_int (i mod 7)) in
              Staged.stage (fun () ->
                  let acc = ref 0.0 in
                  for i = 0 to 4095 do
                    acc := !acc +. (u.(i) *. v.(i))
                  done;
                  ignore (Sys.opaque_identity !acc)));
           Test.make ~name:"liveness-largest"
             (Staged.stage (fun () ->
                  List.iter (fun f -> ignore (A.Liveness.of_func f)) funcs));
           Test.make ~name:"reaching-largest"
             (Staged.stage (fun () ->
                  List.iter (fun f -> ignore (A.Reaching.of_func f)) funcs));
           Test.make ~name:"effects-summary"
             (Staged.stage (fun () -> ignore (A.Effects.summarize big)));
           Test.make ~name:"alias-summary"
             (Staged.stage (fun () -> ignore (A.Alias.summarize big)));
           Test.make ~name:"absint-largest"
             (Staged.stage (fun () ->
                  List.iter (fun f -> ignore (A.Absint.of_func f)) funcs));
           Test.make ~name:"sanitize-ssa-largest"
             (Staged.stage (fun () ->
                  ignore (A.Sanitize.check_module A.Sanitize.Ssa big_oz)));
           Test.make ~name:"equiv-validate-func"
             (* one changed harnessable function: measures the fixed
                per-function cost of the Equiv tier (harness build +
                seeded interpreter runs on both sides), which is what
                every pass application pays per changed definition *)
             (let fn body =
                Parser.parse_module
                  (Printf.sprintf
                     "module equivbench\n\nfunc @f(%%0: i64, %%1: i64): i64 {\nentry:\n  %%2 = %s\n  ret i64 %%2\n}\n"
                     body)
              in
              let eb = fn "add i64 %0, %1" in
              let ea = fn "add i64 %1, %0" in
              Staged.stage (fun () ->
                  ignore (A.Equiv.validate ~fuel:50_000 ~before:eb ea)));
           Test.make ~name:"lint-largest"
             (Staged.stage (fun () -> ignore (A.Lint.lint_module big_oz))) ])
  in
  print_bechamel_rows rows;
  let ns suffix =
    match List.find_opt (fun (n, _) -> Filename.basename n = suffix) rows with
    | Some (_, v) -> v
    | None -> 0.0
  in
  let calib = ns "calib-dot-4k" in
  let rel v = if calib > 0.0 then v /. calib else 0.0 in
  let path = "BENCH_analysis.json" in
  Obs.Runlog.write_json_file path
    (Obs.Json.Obj
       [ ("kind", Obs.Json.Str "bench-analysis");
         ("subject", Obs.Json.Str name);
         ("subject_insns", Obs.Json.Int (Modul.insn_count big));
         ("micro_ns",
          Obs.Json.Obj (List.map (fun (n, v) -> (Filename.basename n, Obs.Json.Float v)) rows));
         ("gate",
          (* the series the CI gate enforces (calibration-relative cost;
             see .github/scripts/bench_gate.py), plus context rows *)
          Obs.Json.Obj
            [ ("calib_ns", Obs.Json.Float calib);
              ("liveness_rel", Obs.Json.Float (rel (ns "liveness-largest")));
              ("sanitize_rel", Obs.Json.Float (rel (ns "sanitize-ssa-largest")));
              ("lint_rel", Obs.Json.Float (rel (ns "lint-largest")));
              ("alias_rel", Obs.Json.Float (rel (ns "alias-summary")));
              ("absint_rel", Obs.Json.Float (rel (ns "absint-largest")));
              ("equiv_rel", Obs.Json.Float (rel (ns "equiv-validate-func")));
              ("reaching_rel", Obs.Json.Float (rel (ns "reaching-largest")));
              ("effects_rel", Obs.Json.Float (rel (ns "effects-summary"))) ]) ]);
  Printf.printf "  analysis bench baseline written to %s\n" path

(* ======================================================================== *)
(* profiling: disabled-path overhead + atomic metrics + collector costs       *)
(* ======================================================================== *)

(* Benches the observability hot paths the profiling subsystem leans on
   and writes BENCH_prof.json for the bench-regression CI job. The gated
   rows are the *disabled* costs — a span with no sink and an atomic
   counter/histogram update — i.e. the overhead every training and eval
   run pays whether or not profiling is on. Each row batches 100
   operations so the calibration-relative ratio sits well above timer
   noise. Collector-side costs (folding an event, GC sampling) are
   reported for context but not gated: they only run when profiling is
   explicitly requested. *)
let prof_bench () =
  section_header "Profiling overhead (span fast path + atomic metrics)";
  let open Bechamel in
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~r "posetrl.bench.ctr" in
  let g = Obs.Metrics.gauge ~r "posetrl.bench.g" in
  let h = Obs.Metrics.histogram ~r "posetrl.bench.h" in
  let collector = Obs.Prof.create () in
  let ev =
    { Obs.Event.name = "posetrl.bench.span";
      attrs = [];
      t_start = 0.0; dur = 1e-5; self = 1e-5; depth = 0; tid = 0 }
  in
  let rows =
    bechamel_run
      (Test.make_grouped ~name:"prof"
         [ Test.make ~name:"calib-dot-4k"
             (let u = Array.init 4096 (fun i -> float_of_int i *. 1e-3) in
              let v = Array.init 4096 (fun i -> float_of_int (i mod 7)) in
              Staged.stage (fun () ->
                  let acc = ref 0.0 in
                  for i = 0 to 4095 do
                    acc := !acc +. (u.(i) *. v.(i))
                  done;
                  ignore (Sys.opaque_identity !acc)));
           Test.make ~name:"span-disabled-100"
             (Staged.stage (fun () ->
                  for _i = 1 to 100 do
                    Obs.Span.with_ "posetrl.bench.noop" (fun _ -> ())
                  done));
           Test.make ~name:"counter-inc-100"
             (Staged.stage (fun () ->
                  for _i = 1 to 100 do Obs.Metrics.inc c done));
           Test.make ~name:"gauge-set-100"
             (Staged.stage (fun () ->
                  for _i = 1 to 100 do Obs.Metrics.set g 42.0 done));
           Test.make ~name:"hist-observe-100"
             (Staged.stage (fun () ->
                  for _i = 1 to 100 do Obs.Metrics.observe h 1e-4 done));
           Test.make ~name:"prof-add-event"
             (Staged.stage (fun () -> Obs.Prof.add collector ev));
           Test.make ~name:"sample-gc"
             (Staged.stage (fun () -> ignore (Obs.Prof.sample_gc ~r ()))) ])
  in
  print_bechamel_rows rows;
  let ns suffix =
    match List.find_opt (fun (n, _) -> Filename.basename n = suffix) rows with
    | Some (_, v) -> v
    | None -> 0.0
  in
  let calib = ns "calib-dot-4k" in
  let rel v = if calib > 0.0 then v /. calib else 0.0 in
  let path = "BENCH_prof.json" in
  Obs.Runlog.write_json_file path
    (Obs.Json.Obj
       [ ("kind", Obs.Json.Str "bench-prof");
         ("micro_ns",
          Obs.Json.Obj
            (List.map (fun (n, v) -> (Filename.basename n, Obs.Json.Float v)) rows));
         ("gate",
          (* the series the CI gate enforces (calibration-relative cost
             of the always-on paths; see .github/scripts/bench_gate.py),
             plus context rows *)
          Obs.Json.Obj
            [ ("calib_ns", Obs.Json.Float calib);
              ("span_disabled_rel", Obs.Json.Float (rel (ns "span-disabled-100")));
              ("counter_inc_rel", Obs.Json.Float (rel (ns "counter-inc-100")));
              ("hist_observe_rel", Obs.Json.Float (rel (ns "hist-observe-100")));
              ("gauge_set_rel", Obs.Json.Float (rel (ns "gauge-set-100")));
              ("prof_add_rel", Obs.Json.Float (rel (ns "prof-add-event")));
              ("sample_gc_rel", Obs.Json.Float (rel (ns "sample-gc"))) ]) ]);
  Printf.printf "  profiling bench baseline written to %s\n" path

(* ======================================================================== *)
(* training-health: per-tick watchdog cost + attribution-update cost          *)
(* ======================================================================== *)

(* Benches the health layer's always-on costs and writes
   BENCH_health.json for the bench-regression CI job. Two gated rows:
   the full watchdog rule pass (runs once per 200-step trainer tick) and
   the streaming attribution update (runs once per environment step).
   Both are batched ×100 so the calibration-relative ratio sits well
   above timer noise. The samples are healthy — the gate bounds the cost
   of a quiet watchdog, the common case; alert formatting is rare and
   off the hot path. *)
let health_bench () =
  section_header "Training-health overhead (watchdog tick + attribution update)";
  let open Bechamel in
  let r = Obs.Metrics.create () in
  let watchdog = Obs.Health.create ~registry:r () in
  let healthy step =
    { Obs.Health.s_step = step;
      s_episode = step / 15;
      s_loss = 0.5;
      s_mean_reward = 5.0;
      s_q_max = 12.0;
      s_replay_size = 4096;
      s_replay_capacity = 10_000;
      s_replay_age_mean = 800.0;
      s_weights_finite = true;
      s_actions = Array.init 34 (fun i -> (i * 7) mod 13) }
  in
  let attrib = Posetrl_rl.Attrib.create ~n_actions:34 ~max_pos:15 () in
  let step = ref 0 in
  let rows =
    bechamel_run
      (Test.make_grouped ~name:"health"
         [ Test.make ~name:"calib-dot-4k"
             (let u = Array.init 4096 (fun i -> float_of_int i *. 1e-3) in
              let v = Array.init 4096 (fun i -> float_of_int (i mod 7)) in
              Staged.stage (fun () ->
                  let acc = ref 0.0 in
                  for i = 0 to 4095 do
                    acc := !acc +. (u.(i) *. v.(i))
                  done;
                  ignore (Sys.opaque_identity !acc)));
           Test.make ~name:"watchdog-check-100"
             (Staged.stage (fun () ->
                  for _i = 1 to 100 do
                    incr step;
                    ignore (Obs.Health.check watchdog (healthy (!step * 200)))
                  done));
           Test.make ~name:"attrib-observe-100"
             (Staged.stage (fun () ->
                  for i = 1 to 100 do
                    Posetrl_rl.Attrib.observe attrib ~action:(i mod 34) ~pos:(i mod 15)
                      ~reward:0.25 ~r_binsize:0.1 ~r_throughput:0.03
                  done)) ])
  in
  print_bechamel_rows rows;
  let ns suffix =
    match List.find_opt (fun (n, _) -> Filename.basename n = suffix) rows with
    | Some (_, v) -> v
    | None -> 0.0
  in
  let calib = ns "calib-dot-4k" in
  let rel v = if calib > 0.0 then v /. calib else 0.0 in
  let path = "BENCH_health.json" in
  Obs.Runlog.write_json_file path
    (Obs.Json.Obj
       [ ("kind", Obs.Json.Str "bench-health");
         ("micro_ns",
          Obs.Json.Obj
            (List.map (fun (n, v) -> (Filename.basename n, Obs.Json.Float v)) rows));
         ("gate",
          Obs.Json.Obj
            [ ("calib_ns", Obs.Json.Float calib);
              ("watchdog_tick_rel",
               Obs.Json.Float (rel (ns "watchdog-check-100")));
              ("attrib_observe_rel",
               Obs.Json.Float (rel (ns "attrib-observe-100"))) ]) ]);
  Printf.printf "  health bench baseline written to %s\n" path

(* ======================================================================== *)
(* coverage: per-step decision-space observe cost                            *)
(* ======================================================================== *)

(* Benches the coverage table's always-on cost and writes
   BENCH_coverage.json for the bench-regression CI job. One gated row:
   the streaming [Coverage.observe] fold over the real ODG universe
   (runs once per environment step, same cadence as attrib-observe),
   batched ×100 like the other per-step rows. [observe_state] and
   [sample] are context rows — the sketch projection is a handful of
   dot products per step and the entropy sample runs once per 200-step
   tick, so neither gates. *)
let coverage_bench () =
  section_header "Coverage overhead (per-step decision-space observe)";
  let open Bechamel in
  let universe = C.Trainer.coverage_universe O.Action_space.odg in
  let cov = Obs.Coverage.create ~state_dim:C.Environment.state_dim universe in
  let n_actions = Array.length universe.Obs.Coverage.action_paths in
  let state =
    Array.init C.Environment.state_dim (fun i -> Float.sin (float_of_int i))
  in
  let step = ref 0 in
  let rows =
    bechamel_run
      (Test.make_grouped ~name:"coverage"
         [ Test.make ~name:"calib-dot-4k"
             (let u = Array.init 4096 (fun i -> float_of_int i *. 1e-3) in
              let v = Array.init 4096 (fun i -> float_of_int (i mod 7)) in
              Staged.stage (fun () ->
                  let acc = ref 0.0 in
                  for i = 0 to 4095 do
                    acc := !acc +. (u.(i) *. v.(i))
                  done;
                  ignore (Sys.opaque_identity !acc)));
           Test.make ~name:"coverage-observe-100"
             (Staged.stage (fun () ->
                  for _i = 1 to 100 do
                    incr step;
                    Obs.Coverage.observe cov ~action:(!step mod n_actions)
                      ~pos:(!step mod 15) ~reward:0.25 ~r_binsize:0.1
                      ~r_throughput:0.03
                  done));
           Test.make ~name:"coverage-state-sketch"
             (Staged.stage (fun () -> Obs.Coverage.observe_state cov state));
           Test.make ~name:"coverage-sample"
             (Staged.stage (fun () -> Obs.Coverage.sample cov ~step:!step)) ])
  in
  print_bechamel_rows rows;
  let ns suffix =
    match List.find_opt (fun (n, _) -> Filename.basename n = suffix) rows with
    | Some (_, v) -> v
    | None -> 0.0
  in
  let calib = ns "calib-dot-4k" in
  let rel v = if calib > 0.0 then v /. calib else 0.0 in
  let path = "BENCH_coverage.json" in
  Obs.Runlog.write_json_file path
    (Obs.Json.Obj
       [ ("kind", Obs.Json.Str "bench-coverage");
         ("micro_ns",
          Obs.Json.Obj
            (List.map (fun (n, v) -> (Filename.basename n, Obs.Json.Float v)) rows));
         ("gate",
          Obs.Json.Obj
            [ ("calib_ns", Obs.Json.Float calib);
              ("coverage_observe_rel",
               Obs.Json.Float (rel (ns "coverage-observe-100"))) ]) ]);
  Printf.printf "  coverage bench baseline written to %s\n" path

(* ======================================================================== *)
(* serve: in-process load generator against the optimization daemon         *)
(* ======================================================================== *)

(* Benches `posetrl serve --opt` end to end — socket in, admission,
   policy rollout, JSON out — and writes BENCH_serve.json for the
   bench-regression CI job. Two phases: a *cold* sweep where every
   request is a distinct suite module (all cache misses, fired in
   concurrent waves so misses coalesce into batched rollouts) and a
   *hot* sweep re-requesting one module (all IR-hash cache hits). The
   gated series are the calibration-relative per-request costs; the
   hot/cold ratio is the headline the cache exists for and CI asserts
   it stays >= 10x. *)
let serve_bench () =
  section_header "Serve daemon (IR-hash cache + batched inference + load gen)";
  let open Bechamel in
  let rows =
    bechamel_run
      (Test.make_grouped ~name:"serve"
         [ Test.make ~name:"calib-dot-4k"
             (let u = Array.init 4096 (fun i -> float_of_int i *. 1e-3) in
              let v = Array.init 4096 (fun i -> float_of_int (i mod 7)) in
              Staged.stage (fun () ->
                  let acc = ref 0.0 in
                  for i = 0 to 4095 do
                    acc := !acc +. (u.(i) *. v.(i))
                  done;
                  ignore (Sys.opaque_identity !acc))) ])
  in
  print_bechamel_rows rows;
  let rng = Rng.create 0 in
  let agent =
    Posetrl_rl.Dqn.create rng ~state_dim:C.Environment.state_dim
      ~hidden:[ 128; 64 ]
      ~n_actions:(O.Action_space.n_actions O.Action_space.odg)
  in
  let engine =
    Posetrl_serve.Engine.create ~agent ~actions:O.Action_space.odg ~target:x86 ()
  in
  let srv = Posetrl_serve.Server.create ~port:0 ~engine () in
  Fun.protect
    ~finally:(fun () -> Posetrl_serve.Server.close srv)
    (fun () ->
      let port = Posetrl_serve.Server.port srv in
      let send text =
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let raw =
          Printf.sprintf
            "POST /optimize HTTP/1.1\r\nHost: b\r\nContent-Length: %d\r\n\r\n%s"
            (String.length text) text
        in
        ignore (Unix.write_substring sock raw 0 (String.length raw));
        sock
      in
      let drain sock =
        Fun.protect
          ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
          (fun () ->
            let chunk = Bytes.create 65536 in
            let eof = ref false in
            while not !eof do
              match Unix.read sock chunk 0 (Bytes.length chunk) with
              | 0 -> eof := true
              | _ -> ()
            done)
      in
      let texts =
        List.map
          (fun (_, m) -> Printer.module_to_string m)
          (W.Suites.all_programs ())
      in
      let wave = 8 in
      (* cold: every request a distinct module, fired in waves of 8 so
         concurrent misses share one batched rollout per pump *)
      let t0 = Unix.gettimeofday () in
      let rec waves = function
        | [] -> ()
        | texts ->
          let now, rest =
            ( List.filteri (fun i _ -> i < wave) texts,
              List.filteri (fun i _ -> i >= wave) texts )
          in
          let socks = List.map send now in
          Posetrl_serve.Server.pump srv;
          List.iter drain socks;
          waves rest
      in
      waves texts;
      let cold_s = Unix.gettimeofday () -. t0 in
      let n_cold = List.length texts in
      (* hot: one module over and over — after the cold sweep every
         request is an IR-hash cache hit, timed individually for p99 *)
      let hot_text = List.hd texts in
      let n_hot = 200 in
      let lats = Array.make n_hot 0.0 in
      let t0 = Unix.gettimeofday () in
      for i = 0 to n_hot - 1 do
        let t = Unix.gettimeofday () in
        let sock = send hot_text in
        Posetrl_serve.Server.pump srv;
        drain sock;
        lats.(i) <- Unix.gettimeofday () -. t
      done;
      let hot_s = Unix.gettimeofday () -. t0 in
      Array.sort compare lats;
      let hot_p50_ns = lats.(n_hot / 2) *. 1e9 in
      let hot_p99_ns = lats.(n_hot * 99 / 100) *. 1e9 in
      let cold_ns = cold_s /. float_of_int n_cold *. 1e9 in
      let hot_ns = hot_s /. float_of_int n_hot *. 1e9 in
      let cold_rps = float_of_int n_cold /. cold_s in
      let hot_rps = float_of_int n_hot /. hot_s in
      let hot_over_cold = if hot_ns > 0.0 then cold_ns /. hot_ns else 0.0 in
      let cache = Posetrl_serve.Engine.cache engine in
      let hits = Posetrl_serve.Cache.hits cache in
      let misses = Posetrl_serve.Cache.misses cache in
      let hit_pct =
        100.0 *. float_of_int hits /. float_of_int (max 1 (hits + misses))
      in
      Printf.printf
        "  cold (distinct modules): %d reqs in %.3fs = %.1f req/s\n\
        \  hot  (cache hits):       %d reqs in %.3fs = %.1f req/s  \
         p50 %.2fms  p99 %.2fms\n\
        \  hot/cold speedup %.1fx   cache hit rate %.1f%%\n"
        n_cold cold_s cold_rps n_hot hot_s hot_rps (hot_p50_ns /. 1e6)
        (hot_p99_ns /. 1e6) hot_over_cold hit_pct;
      record_headline "serve_hot_over_cold_x" (Obs.Json.Float hot_over_cold);
      let ns suffix =
        match
          List.find_opt (fun (n, _) -> Filename.basename n = suffix) rows
        with
        | Some (_, v) -> v
        | None -> 0.0
      in
      let calib = ns "calib-dot-4k" in
      let rel v = if calib > 0.0 then v /. calib else 0.0 in
      let path = "BENCH_serve.json" in
      Obs.Runlog.write_json_file path
        (Obs.Json.Obj
           [ ("kind", Obs.Json.Str "bench-serve");
             ("micro_ns",
              Obs.Json.Obj
                [ ("calib-dot-4k", Obs.Json.Float calib);
                  ("serve-cold-req", Obs.Json.Float cold_ns);
                  ("serve-hot-req", Obs.Json.Float hot_ns);
                  ("serve-hot-p99", Obs.Json.Float hot_p99_ns) ]);
             ("gate",
              (* the series the CI gate enforces (calibration-relative
                 per-request cost; see .github/scripts/bench_gate.py) *)
              Obs.Json.Obj
                [ ("calib_ns", Obs.Json.Float calib);
                  ("serve_cold_cost_rel", Obs.Json.Float (rel cold_ns));
                  ("serve_hot_cost_rel", Obs.Json.Float (rel hot_ns));
                  ("serve_hot_p99_rel", Obs.Json.Float (rel hot_p99_ns)) ]);
             ("load",
              Obs.Json.Obj
                [ ("cold_requests", Obs.Json.Int n_cold);
                  ("hot_requests", Obs.Json.Int n_hot);
                  ("cold_req_s", Obs.Json.Float cold_rps);
                  ("hot_req_s", Obs.Json.Float hot_rps);
                  ("hot_p50_ms", Obs.Json.Float (hot_p50_ns /. 1e6));
                  ("hot_p99_ms", Obs.Json.Float (hot_p99_ns /. 1e6));
                  ("hot_over_cold_x", Obs.Json.Float hot_over_cold);
                  ("cache_hit_pct", Obs.Json.Float hit_pct) ]) ]);
      Printf.printf "  serve bench baseline written to %s\n" path)

(* ======================================================================== *)

let sections : (string * (unit -> unit)) list =
  [ ("fig1", fig1);
    ("tables123", tables123);
    ("fig4", fig4);
    ("table4", table4);
    ("table5", table5);
    ("fig5", fig5);
    ("table6", table6);
    ("ablations", ablations);
    ("micro", micro);
    ("parallel", parallel);
    ("analysis", analysis);
    ("prof", prof_bench);
    ("health", health_bench);
    ("coverage", coverage_bench);
    ("serve", serve_bench) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst sections
  in
  Printf.printf "POSET-RL reproduction bench (training budget: %d steps/model)\n" bench_steps;
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Printf.printf "unknown section %s (available: %s)\n" name
          (String.concat " " (List.map fst sections)))
    requested;
  (* everything above ran instrumented; the registry doubles as a sanity
     check that counters moved only where work actually happened *)
  section_header "Metrics summary (Posetrl_obs registry)";
  Obs.Console.print_metrics ~title:"metrics (posetrl.*)" ();
  let wall = Unix.gettimeofday () -. t0 in
  (* persist the headline numbers through the ledger so runs of this
     harness are diffable (`posetrl runs compare` reads the same schema
     from a run dir; this flat file seeds the BENCH_ perf trajectory) *)
  let ledger_path = "BENCH_runledger.json" in
  Obs.Runlog.write_json_file ledger_path
    (Obs.Json.Obj
       [ ("kind", Obs.Json.Str "bench");
         ("sections", Obs.Json.Arr (List.map (fun s -> Obs.Json.Str s) requested));
         ("bench_steps", Obs.Json.Int bench_steps);
         ("wall_s", Obs.Json.Float wall);
         ("result", Obs.Json.Obj !headline) ]);
  Printf.printf "\nheadline numbers written to %s\n" ledger_path;
  Printf.printf "total bench time: %.1fs\n" wall
